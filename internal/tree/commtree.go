package tree

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// This file implements the spanning-tree selection problem discussed in
// the paper's Section 1.1: Peleg and Reshef showed that the arrow
// protocol's sequential overhead is minimized by a minimum communication
// spanning tree — a tree minimizing the expected distance between two
// nodes drawn from the request distribution. When the distribution p is
// known, E[dT(U, V)] for independent U, V ~ p decomposes per tree edge:
//
//	E[dT(U, V)] = 2 · Σ_e w_e · q_e · (1 − q_e)
//
// where q_e is the probability mass of the subtree hanging below edge e.
// That makes the objective O(n) to evaluate, which the local-search
// optimizer exploits.

// ExpectedPairCost returns E[dT(U, V)] for two independent draws from the
// distribution p over nodes — the sequential-regime expected per-request
// communication of the arrow protocol on this tree. p must have length
// NumNodes; it is normalized internally.
func ExpectedPairCost(t *Tree, p []float64) float64 {
	if len(p) != t.n {
		panic(fmt.Sprintf("tree: distribution of length %d for %d nodes", len(p), t.n))
	}
	var total float64
	for _, v := range p {
		if v < 0 {
			panic("tree: negative probability")
		}
		total += v
	}
	if total == 0 {
		return 0
	}
	// Subtree mass via a post-order accumulation over parents.
	mass := make([]float64, t.n)
	for v := 0; v < t.n; v++ {
		mass[v] = p[v] / total
	}
	// Process nodes in decreasing depth so children accumulate first.
	order := make([]graph.NodeID, t.n)
	for v := range order {
		order[v] = graph.NodeID(v)
	}
	sort.Slice(order, func(i, j int) bool { return t.depth[order[i]] > t.depth[order[j]] })
	var cost float64
	for _, v := range order {
		if v == t.root {
			continue
		}
		q := mass[v]
		cost += 2 * float64(t.pw[v]) * q * (1 - q)
		mass[t.parent[v]] += q
	}
	return cost
}

// WeightedMedian returns the node minimizing Σ_v p_v · dG(node, v) — the
// natural root for a demand-aware shortest-path tree.
func WeightedMedian(g *graph.Graph, p []float64) graph.NodeID {
	n := g.NumNodes()
	if len(p) != n {
		panic("tree: distribution length mismatch")
	}
	best := graph.NodeID(0)
	bestCost := -1.0
	for u := 0; u < n; u++ {
		dist := g.ShortestFrom(graph.NodeID(u))
		var c float64
		for v := 0; v < n; v++ {
			if dist[v] == graph.Infinity {
				c = -1
				break
			}
			c += p[v] * float64(dist[v])
		}
		if c >= 0 && (bestCost < 0 || c < bestCost) {
			bestCost = c
			best = graph.NodeID(u)
		}
	}
	return best
}

// CommTree builds a demand-aware spanning tree of g for the request
// distribution p: it starts from the shortest-path tree rooted at the
// weighted median and hill-climbs over edge swaps (remove a tree edge,
// reconnect the separated component through the best graph edge across
// the cut) until no swap reduces ExpectedPairCost or maxIters passes
// complete. The result is a heuristic minimum communication spanning
// tree in the sense of Hu [13] / Peleg–Reshef [18].
func CommTree(g *graph.Graph, p []float64, maxIters int) (*Tree, error) {
	if maxIters < 1 {
		maxIters = 1
	}
	median := WeightedMedian(g, p)
	t, err := ShortestPathTree(g, median)
	if err != nil {
		return nil, err
	}
	cur := ExpectedPairCost(t, p)
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		// For each tree edge (v, parent(v)), cutting it splits the nodes
		// into v's subtree and the rest; try every graph edge across the
		// cut as a replacement.
		for v := 0; v < t.n; v++ {
			node := graph.NodeID(v)
			if node == t.root {
				continue
			}
			inSub := t.subtreeMembership(node)
			bestTree := (*Tree)(nil)
			bestCost := cur
			for _, rec := range g.EdgeList() {
				if inSub[rec.U] == inSub[rec.V] {
					continue // not across the cut
				}
				cand, err := t.swapEdge(node, rec)
				if err != nil {
					continue
				}
				if c := ExpectedPairCost(cand, p); c < bestCost-1e-12 {
					bestCost = c
					bestTree = cand
				}
			}
			if bestTree != nil {
				t = bestTree
				cur = bestCost
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return t, nil
}

// subtreeMembership marks every node in v's subtree (v included).
func (t *Tree) subtreeMembership(v graph.NodeID) []bool {
	in := make([]bool, t.n)
	in[v] = true
	// Children lists are implicit; walk adjacency away from the parent.
	stack := []graph.NodeID{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.adj[u] {
			if e.To != t.parent[u] && !in[e.To] {
				in[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return in
}

// swapEdge returns a new tree with the edge (cut, parent(cut)) removed
// and the graph edge rec inserted instead. rec must cross the cut.
func (t *Tree) swapEdge(cut graph.NodeID, rec graph.EdgeRecord) (*Tree, error) {
	// Build adjacency of the new tree: all edges except cut-parent, plus
	// rec. Then root at the old root and derive parents.
	type edge struct {
		to graph.NodeID
		w  graph.Weight
	}
	adj := make([][]edge, t.n)
	for v := 0; v < t.n; v++ {
		node := graph.NodeID(v)
		if node == t.root || node == cut {
			continue
		}
		adj[node] = append(adj[node], edge{to: t.parent[node], w: t.pw[node]})
		adj[t.parent[node]] = append(adj[t.parent[node]], edge{to: node, w: t.pw[node]})
	}
	adj[rec.U] = append(adj[rec.U], edge{to: rec.V, w: rec.W})
	adj[rec.V] = append(adj[rec.V], edge{to: rec.U, w: rec.W})

	parent := make([]graph.NodeID, t.n)
	pw := make([]graph.Weight, t.n)
	seen := make([]bool, t.n)
	parent[t.root] = t.root
	seen[t.root] = true
	stack := []graph.NodeID{t.root}
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[u] {
			if !seen[e.to] {
				seen[e.to] = true
				parent[e.to] = u
				pw[e.to] = e.w
				count++
				stack = append(stack, e.to)
			}
		}
	}
	if count != t.n {
		return nil, fmt.Errorf("tree: swap disconnected the tree")
	}
	return FromParents(t.root, parent, pw)
}
