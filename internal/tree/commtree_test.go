package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// bruteExpectedPairCost computes E[dT(U,V)] by direct double sum.
func bruteExpectedPairCost(t *Tree, p []float64) float64 {
	var total float64
	for _, v := range p {
		total += v
	}
	if total == 0 {
		return 0
	}
	var cost float64
	for u := 0; u < t.NumNodes(); u++ {
		for v := 0; v < t.NumNodes(); v++ {
			cost += (p[u] / total) * (p[v] / total) * float64(t.Dist(graph.NodeID(u), graph.NodeID(v)))
		}
	}
	return cost
}

func TestExpectedPairCostMatchesBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := graph.RandomGeometric(n, 0.5, 4, seed)
		tr, err := BFS(g, 0)
		if err != nil {
			return false
		}
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
		}
		fast := ExpectedPairCost(tr, p)
		slow := bruteExpectedPairCost(tr, p)
		diff := fast - slow
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestExpectedPairCostUniformOnPath(t *testing.T) {
	// Uniform distribution on a path of n nodes: E[d(U,V)] = (n²−1)/(3n).
	n := 9
	tr := PathTree(n)
	p := make([]float64, n)
	for i := range p {
		p[i] = 1
	}
	want := float64(n*n-1) / float64(3*n)
	got := ExpectedPairCost(tr, p)
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("E[d] = %f, want %f", got, want)
	}
}

func TestExpectedPairCostDegenerate(t *testing.T) {
	tr := PathTree(5)
	if c := ExpectedPairCost(tr, make([]float64, 5)); c != 0 {
		t.Errorf("zero distribution cost = %f", c)
	}
	point := []float64{0, 0, 1, 0, 0}
	if c := ExpectedPairCost(tr, point); c != 0 {
		t.Errorf("point mass cost = %f, want 0", c)
	}
}

func TestWeightedMedian(t *testing.T) {
	g := graph.Path(9)
	uniform := make([]float64, 9)
	for i := range uniform {
		uniform[i] = 1
	}
	if m := WeightedMedian(g, uniform); m != 4 {
		t.Errorf("uniform median = %d, want 4", m)
	}
	skewed := make([]float64, 9)
	skewed[8] = 100
	skewed[0] = 1
	if m := WeightedMedian(g, skewed); m != 8 {
		t.Errorf("skewed median = %d, want 8", m)
	}
}

func TestCommTreeImprovesOnSkewedDemand(t *testing.T) {
	// A cycle with all demand on two adjacent nodes at positions 0 and
	// n-1: the path tree (cut between them) is terrible; CommTree should
	// put the tree cut elsewhere.
	n := 16
	g := graph.Cycle(n)
	p := make([]float64, n)
	p[0] = 1
	p[n-1] = 1
	ct, err := CommTree(g, p, 8)
	if err != nil {
		t.Fatal(err)
	}
	bad := PathTree(n) // dT(0, n-1) = n-1 on this tree
	if got, worst := ExpectedPairCost(ct, p), ExpectedPairCost(bad, p); got >= worst {
		t.Errorf("CommTree cost %f not below path-tree cost %f", got, worst)
	}
	// The optimal tree keeps 0 and n-1 adjacent: E[d] = 2·(1/2)·(1/2)·1.
	if got := ExpectedPairCost(ct, p); got > 0.5+1e-9 {
		t.Errorf("CommTree cost %f, want 0.5 (nodes kept adjacent)", got)
	}
}

func TestCommTreeNeverWorseThanSPT(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(16)
		g := graph.GNP(n, 0.4, seed)
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64() * rng.Float64() // skewed
		}
		median := WeightedMedian(g, p)
		spt, err := ShortestPathTree(g, median)
		if err != nil {
			return false
		}
		ct, err := CommTree(g, p, 4)
		if err != nil {
			return false
		}
		return ExpectedPairCost(ct, p) <= ExpectedPairCost(spt, p)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCommTreeIsValidSpanningTree(t *testing.T) {
	g := graph.Grid(4, 4)
	p := make([]float64, 16)
	for i := range p {
		p[i] = float64(i + 1)
	}
	ct, err := CommTree(g, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 16; v++ {
		node := graph.NodeID(v)
		if node == ct.Root() {
			continue
		}
		if !g.HasEdge(node, ct.Parent(node)) {
			t.Errorf("tree edge (%d,%d) not in graph", node, ct.Parent(node))
		}
	}
}
