package tree

import (
	"fmt"

	"repro/internal/graph"
)

// GridNav is a closed-form Nav for the comb spanning tree of
// graph.Grid(rows, cols): node (r, c) has ID r*cols+c; column 0 is the
// spine ((r, 0) parents to (r-1, 0)) and each row is a tooth ((r, c)
// parents to (r, c-1) for c > 0), rooted at (0, 0) with unit weights.
// Every query decomposes into row/column arithmetic, so Parent, Dist
// and NextHop are O(1) with zero per-node state — a generic parent walk
// would pay O(depth) per query, which at grid depths of a thousand-plus
// makes million-node runs infeasible.
type GridNav struct {
	rows, cols int
}

// GridWalker returns the comb-tree navigator for graph.Grid(rows, cols).
func GridWalker(rows, cols int) *GridNav {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("tree: GridWalker(%d, %d) needs positive dimensions", rows, cols))
	}
	return &GridNav{rows: rows, cols: cols}
}

// NumNodes returns rows*cols.
func (g *GridNav) NumNodes() int { return g.rows * g.cols }

// Root returns node (0, 0).
func (g *GridNav) Root() graph.NodeID { return 0 }

// id maps grid coordinates to the node ID graph.Grid assigns.
func (g *GridNav) id(r, c int) graph.NodeID { return graph.NodeID(r*g.cols + c) }

// rc splits a node ID into grid coordinates.
func (g *GridNav) rc(v graph.NodeID) (r, c int) { return int(v) / g.cols, int(v) % g.cols }

// Parent returns v's comb-tree parent; the root is its own parent.
func (g *GridNav) Parent(v graph.NodeID) graph.NodeID {
	r, c := g.rc(v)
	switch {
	case c > 0:
		return g.id(r, c-1)
	case r > 0:
		return g.id(r-1, 0)
	default:
		return v
	}
}

// ParentWeight returns 1 for every non-root node (the grid has unit
// edge weights) and 0 for the root.
func (g *GridNav) ParentWeight(v graph.NodeID) graph.Weight {
	if v == 0 {
		return 0
	}
	return 1
}

// Depth returns v's hop depth below the root: r + c.
func (g *GridNav) Depth(v graph.NodeID) int32 {
	r, c := g.rc(v)
	return int32(r + c)
}

// Dist returns the comb-tree distance. Two nodes in the same row meet
// at the shallower column; otherwise the path runs through the spine at
// (min(r1, r2), 0).
func (g *GridNav) Dist(u, v graph.NodeID) graph.Weight {
	r1, c1 := g.rc(u)
	r2, c2 := g.rc(v)
	if r1 == r2 {
		if c1 > c2 {
			return graph.Weight(c1 - c2)
		}
		return graph.Weight(c2 - c1)
	}
	d := r1 - r2
	if d < 0 {
		d = -d
	}
	return graph.Weight(d + c1 + c2)
}

// NextHop returns u's comb-tree neighbour on the path to target. It
// panics if u == target.
func (g *GridNav) NextHop(u, target graph.NodeID) graph.NodeID {
	if u == target {
		panic("tree: NextHop with u == target")
	}
	ru, cu := g.rc(u)
	rt, ct := g.rc(target)
	if ru == rt {
		if ct > cu {
			return g.id(ru, cu+1)
		}
		return g.id(ru, cu-1)
	}
	// Different rows: the path runs through the spine. Off-spine nodes
	// climb their tooth; spine nodes move along the spine toward the
	// target's row.
	if cu > 0 {
		return g.id(ru, cu-1)
	}
	if rt > ru {
		return g.id(ru+1, 0)
	}
	return g.id(ru-1, 0)
}
