package tree

import "repro/internal/graph"

// Nav is the navigation interface the arrow protocol's drivers and
// sim.TreeTopology actually need from a spanning tree: parent pointers,
// next-hop routing and distances. *Tree satisfies it with O(log n)
// queries over O(n log n) binary-lifting tables; the implicit
// implementations in this package (Walker, GridNav) answer the same
// queries by on-the-fly parent walks over O(n) — or O(1) — state, which
// is what makes million-node trees affordable (ROADMAP item 1: the LCA
// tables were the memory wall).
type Nav interface {
	// NumNodes returns the node count.
	NumNodes() int
	// Root returns the rooting node (used for rooting, not the protocol
	// sink).
	Root() graph.NodeID
	// Parent returns v's parent; the root is its own parent.
	Parent(v graph.NodeID) graph.NodeID
	// ParentWeight returns the weight of v's parent edge. The root has
	// no parent edge; its value is implementation-defined.
	ParentWeight(v graph.NodeID) graph.Weight
	// NextHop returns u's tree neighbour on the unique path from u to
	// target. It panics if u == target (there is no next hop).
	NextHop(u, target graph.NodeID) graph.NodeID
	// Dist returns the weighted tree distance dT(u, v).
	Dist(u, v graph.NodeID) graph.Weight
}

// Compile-time checks: the explicit tree and both implicit navigators
// answer the same interface.
var (
	_ Nav = (*Tree)(nil)
	_ Nav = (*Walker)(nil)
	_ Nav = (*GridNav)(nil)
)
