package tree

import "repro/internal/graph"

// KthAncestor returns v's ancestor k levels up, or the root if k exceeds
// v's depth.
func (t *Tree) KthAncestor(v graph.NodeID, k int) graph.NodeID {
	for b := 0; k > 0 && b <= t.logN; b++ {
		if k&1 == 1 {
			v = t.up[b][v]
		}
		k >>= 1
	}
	return v
}

// IsAncestor reports whether a is an ancestor of v (every node is its own
// ancestor).
func (t *Tree) IsAncestor(a, v graph.NodeID) bool {
	return t.LCA(a, v) == a
}

// NextHop returns u's tree neighbour on the unique path from u to target.
// It panics if u == target (there is no next hop).
func (t *Tree) NextHop(u, target graph.NodeID) graph.NodeID {
	if u == target {
		panic("tree: NextHop with u == target")
	}
	l := t.LCA(u, target)
	if l != u {
		// Path first climbs toward the LCA.
		return t.parent[u]
	}
	// u is an ancestor of target: descend to the child of u on the path,
	// i.e. target's ancestor one level below u.
	k := int(t.depth[target] - t.depth[u] - 1)
	return t.KthAncestor(target, k)
}
