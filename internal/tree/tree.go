// Package tree implements the pre-selected spanning tree T the arrow
// protocol operates on: tree construction (BFS tree, Prim and Kruskal
// MSTs, balanced binary, path, star), exact tree distances dT via binary
// lifting LCA, tree diameter, and the stretch s = max dT/dG of T relative
// to its graph (Definition 3.1 in the paper).
package tree

import (
	"fmt"

	"repro/internal/graph"
)

// Tree is a rooted spanning tree over nodes [0, N) with weighted edges.
// It supports O(log n) distance queries dT(u, v) after O(n log n)
// preprocessing.
type Tree struct {
	n      int
	root   graph.NodeID
	parent []graph.NodeID // parent[root] == root
	pw     []graph.Weight // weight of edge to parent; 0 for root
	adj    [][]graph.Edge // tree adjacency (children + parent)

	depthW []graph.Weight // weighted depth from root
	depth  []int32        // unweighted depth from root (for LCA)
	up     [][]graph.NodeID
	logN   int
}

// FromParents builds a tree from a parent array. parent[root] must equal
// root; pw[root] is ignored. It validates that the structure is a single
// tree spanning all nodes.
func FromParents(root graph.NodeID, parent []graph.NodeID, pw []graph.Weight) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("tree: empty parent array")
	}
	if int(root) < 0 || int(root) >= n {
		return nil, fmt.Errorf("tree: root %d out of range", root)
	}
	if parent[root] != root {
		return nil, fmt.Errorf("tree: parent[root] must be root itself")
	}
	if len(pw) != n {
		return nil, fmt.Errorf("tree: parent weights length %d != %d", len(pw), n)
	}
	t := &Tree{
		n:      n,
		root:   root,
		parent: append([]graph.NodeID(nil), parent...),
		pw:     append([]graph.Weight(nil), pw...),
		adj:    make([][]graph.Edge, n),
	}
	for v := 0; v < n; v++ {
		if v == int(root) {
			continue
		}
		p := parent[v]
		if int(p) < 0 || int(p) >= n || p == graph.NodeID(v) {
			return nil, fmt.Errorf("tree: invalid parent %d of node %d", p, v)
		}
		if pw[v] <= 0 {
			return nil, fmt.Errorf("tree: non-positive edge weight %d at node %d", pw[v], v)
		}
		t.adj[v] = append(t.adj[v], graph.Edge{To: p, W: pw[v]})
		t.adj[p] = append(t.adj[p], graph.Edge{To: graph.NodeID(v), W: pw[v]})
	}
	if err := t.index(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustFromParents is FromParents that panics on error; for use with
// generator code that constructs parents programmatically.
func MustFromParents(root graph.NodeID, parent []graph.NodeID, pw []graph.Weight) *Tree {
	t, err := FromParents(root, parent, pw)
	if err != nil {
		panic(err)
	}
	return t
}

// index computes depths and the binary-lifting table, verifying
// reachability of every node from the root.
func (t *Tree) index() error {
	n := t.n
	t.depthW = make([]graph.Weight, n)
	t.depth = make([]int32, n)
	order := make([]graph.NodeID, 0, n)
	seen := make([]bool, n)
	order = append(order, t.root)
	seen[t.root] = true
	for head := 0; head < len(order); head++ {
		u := order[head]
		for _, e := range t.adj[u] {
			if !seen[e.To] {
				if t.parent[e.To] != u {
					return fmt.Errorf("tree: node %d reached from non-parent %d", e.To, u)
				}
				seen[e.To] = true
				t.depthW[e.To] = t.depthW[u] + e.W
				t.depth[e.To] = t.depth[u] + 1
				order = append(order, e.To)
			}
		}
	}
	if len(order) != n {
		return fmt.Errorf("tree: only %d of %d nodes reachable from root", len(order), n)
	}
	t.logN = 1
	for 1<<t.logN < n {
		t.logN++
	}
	t.up = make([][]graph.NodeID, t.logN+1)
	t.up[0] = t.parent
	for k := 1; k <= t.logN; k++ {
		t.up[k] = make([]graph.NodeID, n)
		for v := 0; v < n; v++ {
			t.up[k][v] = t.up[k-1][t.up[k-1][v]]
		}
	}
	return nil
}

// NumNodes returns the number of nodes in the tree.
func (t *Tree) NumNodes() int { return t.n }

// Root returns the tree root used for rooting (not the protocol sink).
func (t *Tree) Root() graph.NodeID { return t.root }

// Parent returns v's parent (the root is its own parent).
func (t *Tree) Parent(v graph.NodeID) graph.NodeID { return t.parent[v] }

// ParentWeight returns the weight of v's parent edge (0 for the root).
func (t *Tree) ParentWeight(v graph.NodeID) graph.Weight { return t.pw[v] }

// Neighbors returns v's tree-adjacent nodes with edge weights. The slice
// is owned by the tree and must not be modified.
func (t *Tree) Neighbors(v graph.NodeID) []graph.Edge { return t.adj[v] }

// Degree returns the number of tree edges incident to v.
func (t *Tree) Degree(v graph.NodeID) int { return len(t.adj[v]) }

// Depth returns the weighted distance from the root to v.
func (t *Tree) Depth(v graph.NodeID) graph.Weight { return t.depthW[v] }

// Hops returns the number of tree edges between u and v.
func (t *Tree) Hops(u, v graph.NodeID) int {
	l := t.LCA(u, v)
	return int(t.depth[u] + t.depth[v] - 2*t.depth[l])
}

// LCA returns the lowest common ancestor of u and v.
func (t *Tree) LCA(u, v graph.NodeID) graph.NodeID {
	if t.depth[u] < t.depth[v] {
		u, v = v, u
	}
	diff := t.depth[u] - t.depth[v]
	for k := 0; diff > 0; k++ {
		if diff&1 == 1 {
			u = t.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := t.logN; k >= 0; k-- {
		if t.up[k][u] != t.up[k][v] {
			u = t.up[k][u]
			v = t.up[k][v]
		}
	}
	return t.parent[u]
}

// Dist returns the weighted tree distance dT(u, v).
func (t *Tree) Dist(u, v graph.NodeID) graph.Weight {
	l := t.LCA(u, v)
	return t.depthW[u] + t.depthW[v] - 2*t.depthW[l]
}

// PathTo returns the tree path from u to v inclusive of both endpoints.
func (t *Tree) PathTo(u, v graph.NodeID) []graph.NodeID {
	l := t.LCA(u, v)
	var up []graph.NodeID
	for x := u; x != l; x = t.parent[x] {
		up = append(up, x)
	}
	up = append(up, l)
	var down []graph.NodeID
	for x := v; x != l; x = t.parent[x] {
		down = append(down, x)
	}
	for i := len(down) - 1; i >= 0; i-- {
		up = append(up, down[i])
	}
	return up
}

// Diameter returns the weighted diameter of the tree, computed with two
// breadth/depth sweeps (the classic double-sweep is exact on trees).
func (t *Tree) Diameter() graph.Weight {
	if t.n == 1 {
		return 0
	}
	far, _ := t.farthestFrom(t.root)
	_, d := t.farthestFrom(far)
	return d
}

// DiameterEndpoints returns two nodes realizing the tree diameter.
func (t *Tree) DiameterEndpoints() (graph.NodeID, graph.NodeID) {
	if t.n == 1 {
		return t.root, t.root
	}
	a, _ := t.farthestFrom(t.root)
	b, _ := t.farthestFrom(a)
	return a, b
}

func (t *Tree) farthestFrom(src graph.NodeID) (graph.NodeID, graph.Weight) {
	dist := make([]graph.Weight, t.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	stack := []graph.NodeID{src}
	best, bestD := src, graph.Weight(0)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.adj[u] {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + e.W
				if dist[e.To] > bestD {
					bestD = dist[e.To]
					best = e.To
				}
				stack = append(stack, e.To)
			}
		}
	}
	return best, bestD
}

// Stretch returns s = max over node pairs of dT(u,v)/dG(u,v), the stretch
// of this tree with respect to g (Definition 3.1). It is exact and costs
// an all-pairs shortest-path computation on g. The second return value is
// a pair realizing the maximum.
func (t *Tree) Stretch(g *graph.Graph) (float64, [2]graph.NodeID) {
	if g.NumNodes() != t.n {
		panic("tree: stretch against graph of different size")
	}
	best := 1.0
	pair := [2]graph.NodeID{0, 0}
	for u := 0; u < t.n; u++ {
		dg := g.ShortestFrom(graph.NodeID(u))
		for v := u + 1; v < t.n; v++ {
			if dg[v] == graph.Infinity || dg[v] == 0 {
				continue
			}
			r := float64(t.Dist(graph.NodeID(u), graph.NodeID(v))) / float64(dg[v])
			if r > best {
				best = r
				pair = [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)}
			}
		}
	}
	return best, pair
}

// EdgeStretch returns the maximum stretch restricted to graph edges
// (max over edges (u,v) of dT(u,v)/w(u,v)). For metric-like graphs this
// equals the full stretch and is much cheaper: O(m log n).
func (t *Tree) EdgeStretch(g *graph.Graph) float64 {
	best := 1.0
	for _, e := range g.EdgeList() {
		r := float64(t.Dist(e.U, e.V)) / float64(e.W)
		if r > best {
			best = r
		}
	}
	return best
}

// ToGraph converts the tree to a graph.Graph containing exactly the tree
// edges. Useful when a protocol should run with G = T.
func (t *Tree) ToGraph() *graph.Graph {
	g := graph.New(t.n)
	for v := 0; v < t.n; v++ {
		if graph.NodeID(v) == t.root {
			continue
		}
		g.AddEdge(graph.NodeID(v), t.parent[v], t.pw[v])
	}
	return g
}

// Validate re-checks the structural invariants; it is used by tests.
func (t *Tree) Validate() error {
	_, err := FromParents(t.root, t.parent, t.pw)
	return err
}
