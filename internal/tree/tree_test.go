package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func mustBFS(t *testing.T, g *graph.Graph, root graph.NodeID) *Tree {
	t.Helper()
	tr, err := BFS(g, root)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestFromParentsValidation(t *testing.T) {
	cases := []struct {
		name   string
		root   graph.NodeID
		parent []graph.NodeID
		pw     []graph.Weight
	}{
		{"empty", 0, nil, nil},
		{"root-out-of-range", 5, []graph.NodeID{0, 0}, []graph.Weight{0, 1}},
		{"root-not-self", 0, []graph.NodeID{1, 1}, []graph.Weight{0, 1}},
		{"cycle", 0, []graph.NodeID{0, 2, 1}, []graph.Weight{0, 1, 1}},
		{"bad-weight", 0, []graph.NodeID{0, 0}, []graph.Weight{0, 0}},
		{"weights-length", 0, []graph.NodeID{0, 0}, []graph.Weight{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromParents(tc.root, tc.parent, tc.pw); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestDistAgainstGraphOnTreeTopology(t *testing.T) {
	// dT computed via LCA must equal dG on the tree's own graph.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := graph.GNP(n, 0.3, int64(trial))
		tr := mustBFS(t, g, 0)
		tg := tr.ToGraph()
		for q := 0; q < 30; q++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if got, want := tr.Dist(u, v), tg.Dist(u, v); got != want {
				t.Fatalf("trial %d: dT(%d,%d) = %d, graph says %d", trial, u, v, got, want)
			}
		}
	}
}

func TestHopsAndDepth(t *testing.T) {
	tr := BalancedBinary(15)
	if tr.Hops(7, 8) != 2 {
		t.Errorf("hops(7,8) = %d, want 2 (siblings)", tr.Hops(7, 8))
	}
	if tr.Hops(7, 14) != 6 {
		t.Errorf("hops(7,14) = %d, want 6 (leaf to leaf across root)", tr.Hops(7, 14))
	}
	if tr.Depth(0) != 0 || tr.Depth(7) != 3 {
		t.Errorf("depths: root %d (want 0), node7 %d (want 3)", tr.Depth(0), tr.Depth(7))
	}
}

func TestLCAKnownTree(t *testing.T) {
	tr := BalancedBinary(15)
	cases := []struct{ u, v, want graph.NodeID }{
		{7, 8, 3}, {7, 9, 1}, {7, 14, 0}, {3, 7, 3}, {0, 12, 0}, {5, 5, 5},
	}
	for _, tc := range cases {
		if got := tr.LCA(tc.u, tc.v); got != tc.want {
			t.Errorf("LCA(%d,%d) = %d, want %d", tc.u, tc.v, got, tc.want)
		}
	}
}

func TestPathToEndpoints(t *testing.T) {
	tr := BalancedBinary(15)
	p := tr.PathTo(7, 14)
	if p[0] != 7 || p[len(p)-1] != 14 {
		t.Errorf("path endpoints %v", p)
	}
	if len(p) != 7 {
		t.Errorf("path length %d, want 7 nodes", len(p))
	}
	for i := 1; i < len(p); i++ {
		found := false
		for _, e := range tr.Neighbors(p[i-1]) {
			if e.To == p[i] {
				found = true
			}
		}
		if !found {
			t.Errorf("path step (%d,%d) not a tree edge", p[i-1], p[i])
		}
	}
}

func TestNextHopWalksToTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := BalancedBinary(31)
	for q := 0; q < 100; q++ {
		u := graph.NodeID(rng.Intn(31))
		v := graph.NodeID(rng.Intn(31))
		if u == v {
			continue
		}
		cur := u
		steps := 0
		for cur != v {
			cur = tr.NextHop(cur, v)
			steps++
			if steps > 31 {
				t.Fatalf("NextHop(%d -> %d) does not terminate", u, v)
			}
		}
		if steps != tr.Hops(u, v) {
			t.Errorf("NextHop walk %d->%d took %d steps, Hops says %d", u, v, steps, tr.Hops(u, v))
		}
	}
}

func TestKthAncestor(t *testing.T) {
	tr := BalancedBinary(15)
	if a := tr.KthAncestor(7, 1); a != 3 {
		t.Errorf("KthAncestor(7,1) = %d, want 3", a)
	}
	if a := tr.KthAncestor(7, 3); a != 0 {
		t.Errorf("KthAncestor(7,3) = %d, want 0", a)
	}
	if a := tr.KthAncestor(7, 99); a != 0 {
		t.Errorf("KthAncestor(7,99) = %d, want root", a)
	}
}

func TestDiameterKnownTrees(t *testing.T) {
	if d := PathTree(10).Diameter(); d != 9 {
		t.Errorf("path tree diameter = %d, want 9", d)
	}
	if d := StarTree(10).Diameter(); d != 2 {
		t.Errorf("star tree diameter = %d, want 2", d)
	}
	if d := BalancedBinary(15).Diameter(); d != 6 {
		t.Errorf("balanced binary 15 diameter = %d, want 6", d)
	}
	if d := BalancedBinary(1).Diameter(); d != 0 {
		t.Errorf("singleton diameter = %d, want 0", d)
	}
}

func TestDiameterMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(30)
		g := graph.RandomGeometric(n, 0.5, 4, int64(trial))
		tr, err := PrimMST(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		var brute graph.Weight
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if d := tr.Dist(graph.NodeID(u), graph.NodeID(v)); d > brute {
					brute = d
				}
			}
		}
		if d := tr.Diameter(); d != brute {
			t.Errorf("trial %d: Diameter = %d, brute force = %d", trial, d, brute)
		}
	}
}

func TestMSTWeightsAgree(t *testing.T) {
	// Prim and Kruskal must produce spanning trees of equal total weight.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(25)
		g := graph.RandomGeometric(n, 0.6, 9, int64(trial))
		p, err := PrimMST(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		k, err := KruskalMST(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if pw, kw := treeWeight(p), treeWeight(k); pw != kw {
			t.Errorf("trial %d: Prim weight %d != Kruskal weight %d", trial, pw, kw)
		}
	}
}

func treeWeight(t *Tree) graph.Weight {
	var total graph.Weight
	for v := 0; v < t.NumNodes(); v++ {
		node := graph.NodeID(v)
		if node == t.Root() {
			continue
		}
		total += t.Dist(node, t.Parent(node))
	}
	return total
}

func TestMSTIsMinimumOnSmallGraphs(t *testing.T) {
	// Compare Prim against brute-force enumeration over spanning trees of
	// a small graph (via Kruskal on all edge permutations is overkill;
	// instead check against a hand-computed instance).
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 5)
	g.AddEdge(0, 2, 2)
	tr, err := PrimMST(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if w := treeWeight(tr); w != 4 {
		t.Errorf("MST weight = %d, want 4 (edges 1+2+1 or 1+2+1)", w)
	}
}

func TestShortestPathTreePreservesRootDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(30)
		g := graph.RandomGeometric(n, 0.5, 6, int64(trial))
		root := graph.NodeID(rng.Intn(n))
		tr, err := ShortestPathTree(g, root)
		if err != nil {
			t.Fatal(err)
		}
		dg := g.ShortestFrom(root)
		for v := 0; v < n; v++ {
			if tr.Dist(root, graph.NodeID(v)) != dg[v] {
				t.Errorf("trial %d: dT(root,%d)=%d != dG=%d",
					trial, v, tr.Dist(root, graph.NodeID(v)), dg[v])
			}
		}
	}
}

func TestStretchDefinitions(t *testing.T) {
	// On a cycle of length n with a path spanning tree, the stretch is
	// n-1 (the removed edge's endpoints).
	n := 12
	g := graph.Cycle(n)
	tr := PathTree(n)
	s, pair := tr.Stretch(g)
	if s != float64(n-1) {
		t.Errorf("stretch = %f, want %d", s, n-1)
	}
	if d := tr.Dist(pair[0], pair[1]); d != graph.Weight(n-1) {
		t.Errorf("witness pair %v has dT %d, want %d", pair, d, n-1)
	}
	if es := tr.EdgeStretch(g); es != float64(n-1) {
		t.Errorf("edge stretch = %f, want %d", es, n-1)
	}
}

func TestEdgeStretchEqualsFullStretchOnUnitGraphs(t *testing.T) {
	prop := func(seed int64) bool {
		n := 6 + int(seed%10+10)%10
		g := graph.GNP(n, 0.4, seed)
		tr, err := BFS(g, 0)
		if err != nil {
			return false
		}
		full, _ := tr.Stretch(g)
		edge := tr.EdgeStretch(g)
		// Edge stretch is a lower bound in general; for unit graphs they
		// coincide because any path's stretch is at most the max edge's.
		return edge <= full+1e-9 && full <= edge+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: tree distance satisfies the metric axioms.
func TestTreeDistanceIsMetric(t *testing.T) {
	prop := func(seed int64) bool {
		n := 4 + int(seed%20+20)%20
		g := graph.GNP(n, 0.3, seed)
		tr, err := BFS(g, 0)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for q := 0; q < 20; q++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			w := graph.NodeID(rng.Intn(n))
			duv := tr.Dist(u, v)
			if duv != tr.Dist(v, u) {
				return false
			}
			if (u == v) != (duv == 0) {
				return false
			}
			if duv > tr.Dist(u, w)+tr.Dist(w, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: spanning trees of connected graphs span all nodes and use
// only graph edges.
func TestSpanningTreesAreSubgraphs(t *testing.T) {
	prop := func(seed int64) bool {
		n := 3 + int(seed%16+16)%16
		g := graph.RandomGeometric(n, 0.5, 3, seed)
		for _, build := range []func(*graph.Graph, graph.NodeID) (*Tree, error){BFS, PrimMST, KruskalMST, ShortestPathTree} {
			tr, err := build(g, 0)
			if err != nil {
				return false
			}
			if tr.NumNodes() != n {
				return false
			}
			for v := 0; v < n; v++ {
				node := graph.NodeID(v)
				if node == tr.Root() {
					continue
				}
				if !g.HasEdge(node, tr.Parent(node)) {
					return false
				}
			}
			if tr.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Sets() != 6 {
		t.Errorf("initial sets = %d, want 6", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(2, 3) || !uf.Union(0, 2) {
		t.Error("unions of disjoint sets must succeed")
	}
	if uf.Union(1, 3) {
		t.Error("union within a set must report false")
	}
	if uf.Find(0) != uf.Find(3) {
		t.Error("0 and 3 should share a representative")
	}
	if uf.Find(4) == uf.Find(0) {
		t.Error("4 should be separate")
	}
	if uf.Sets() != 3 {
		t.Errorf("sets = %d, want 3", uf.Sets())
	}
}

func TestBFSOnSingleNode(t *testing.T) {
	g := graph.New(1)
	tr := mustBFS(t, g, 0)
	if tr.NumNodes() != 1 || tr.Diameter() != 0 {
		t.Error("single-node tree malformed")
	}
	if tr.Dist(0, 0) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestBFSDisconnectedFails(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	if _, err := BFS(g, 0); err == nil {
		t.Error("expected error on disconnected graph")
	}
}
