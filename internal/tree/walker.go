package tree

import (
	"fmt"

	"repro/internal/graph"
)

// Walker is an implicit tree navigator: it answers the Nav queries by
// walking parent pointers on the fly instead of materializing binary-
// lifting LCA tables. State is two flat O(n) arrays (three with
// weights), so a million-node tree costs ~8 MB instead of the ~200 MB
// the lifted *Tree needs. Queries are O(depth(u) + depth(v)), which is
// O(log n) on the balanced shapes the scale tier targets.
type Walker struct {
	root   graph.NodeID
	parent []graph.NodeID
	depth  []int32
	pw     []graph.Weight // nil means every parent edge has weight 1
}

// WalkerFromParents builds a Walker from a parent-pointer array. The
// root must satisfy parent[root] == root; every other node's parent
// chain must reach the root (cycles or a second self-parent are
// rejected). pw gives per-node parent-edge weights; nil means unit
// weights. Unlike FromParents it keeps no adjacency or lifting tables,
// so construction is O(n) time and the arrays are retained as-is.
func WalkerFromParents(root graph.NodeID, parent []graph.NodeID, pw []graph.Weight) (*Walker, error) {
	n := len(parent)
	if n == 0 {
		return nil, fmt.Errorf("tree: empty parent array")
	}
	if int(root) < 0 || int(root) >= n {
		return nil, fmt.Errorf("tree: root %d out of range [0,%d)", root, n)
	}
	if parent[root] != root {
		return nil, fmt.Errorf("tree: root %d is not its own parent", root)
	}
	if pw != nil && len(pw) != n {
		return nil, fmt.Errorf("tree: weight array length %d != %d nodes", len(pw), n)
	}
	for v := 0; v < n; v++ {
		p := parent[v]
		if int(p) < 0 || int(p) >= n {
			return nil, fmt.Errorf("tree: node %d has parent %d out of range", v, p)
		}
		if graph.NodeID(v) != root && p == graph.NodeID(v) {
			return nil, fmt.Errorf("tree: node %d is its own parent but is not the root", v)
		}
		if pw != nil && graph.NodeID(v) != root && pw[v] <= 0 {
			return nil, fmt.Errorf("tree: node %d has non-positive parent weight %d", v, pw[v])
		}
	}
	// Compute depths iteratively, memoizing along each walked chain; a
	// chain that exceeds n steps without reaching a known depth is a
	// cycle (equivalently: a component not attached to the root).
	depth := make([]int32, n)
	for i := range depth {
		depth[i] = -1
	}
	depth[root] = 0
	stack := make([]graph.NodeID, 0, 64)
	for v := 0; v < n; v++ {
		u := graph.NodeID(v)
		stack = stack[:0]
		for depth[u] < 0 {
			if len(stack) > n {
				return nil, fmt.Errorf("tree: cycle through node %d", v)
			}
			stack = append(stack, u)
			u = parent[u]
		}
		d := depth[u]
		for i := len(stack) - 1; i >= 0; i-- {
			d++
			depth[stack[i]] = d
		}
	}
	return &Walker{root: root, parent: parent, depth: depth, pw: pw}, nil
}

// MustWalkerFromParents is WalkerFromParents that panics on error.
func MustWalkerFromParents(root graph.NodeID, parent []graph.NodeID, pw []graph.Weight) *Walker {
	w, err := WalkerFromParents(root, parent, pw)
	if err != nil {
		panic(err)
	}
	return w
}

// BinaryWalker is the implicit counterpart of BalancedBinary(n): node
// v > 0 has parent (v-1)/2 with unit weight, rooted at 0.
func BinaryWalker(n int) *Walker {
	parent := make([]graph.NodeID, n)
	for v := 1; v < n; v++ {
		parent[v] = graph.NodeID((v - 1) / 2)
	}
	return MustWalkerFromParents(0, parent, nil)
}

// PathWalker is the implicit counterpart of PathTree(n): node v > 0 has
// parent v-1, rooted at 0.
func PathWalker(n int) *Walker {
	parent := make([]graph.NodeID, n)
	for v := 1; v < n; v++ {
		parent[v] = graph.NodeID(v - 1)
	}
	return MustWalkerFromParents(0, parent, nil)
}

// StarWalker is the implicit counterpart of StarTree(n): every node
// v > 0 hangs off hub 0.
func StarWalker(n int) *Walker {
	parent := make([]graph.NodeID, n)
	return MustWalkerFromParents(0, parent, nil)
}

// NumNodes returns the node count.
func (w *Walker) NumNodes() int { return len(w.parent) }

// Root returns the rooting node.
func (w *Walker) Root() graph.NodeID { return w.root }

// Parent returns v's parent; the root is its own parent.
func (w *Walker) Parent(v graph.NodeID) graph.NodeID { return w.parent[v] }

// ParentWeight returns the weight of v's parent edge (0 for the root).
func (w *Walker) ParentWeight(v graph.NodeID) graph.Weight {
	if v == w.root {
		return 0
	}
	if w.pw == nil {
		return 1
	}
	return w.pw[v]
}

// Depth returns v's hop depth below the root.
func (w *Walker) Depth(v graph.NodeID) int32 { return w.depth[v] }

// Dist returns the weighted tree distance dT(u, v) by the classic
// two-pointer walk: lift the deeper endpoint to the shallower one's
// depth, then climb both until they meet, accumulating edge weights.
func (w *Walker) Dist(u, v graph.NodeID) graph.Weight {
	var d graph.Weight
	for w.depth[u] > w.depth[v] {
		d += w.edgeW(u)
		u = w.parent[u]
	}
	for w.depth[v] > w.depth[u] {
		d += w.edgeW(v)
		v = w.parent[v]
	}
	for u != v {
		d += w.edgeW(u) + w.edgeW(v)
		u = w.parent[u]
		v = w.parent[v]
	}
	return d
}

// NextHop returns u's tree neighbour on the unique path from u to
// target. It panics if u == target. When target is strictly deeper, it
// lifts target to one level below u; if that ancestor's parent is u the
// path descends through it, otherwise (and in every other case) the
// path climbs to u's parent.
func (w *Walker) NextHop(u, target graph.NodeID) graph.NodeID {
	if u == target {
		panic("tree: NextHop with u == target")
	}
	if w.depth[target] > w.depth[u] {
		x := target
		for w.depth[x] > w.depth[u]+1 {
			x = w.parent[x]
		}
		if w.parent[x] == u {
			return x
		}
	}
	return w.parent[u]
}

// edgeW returns the weight of v's parent edge without the root guard
// (callers never ask for the root's edge).
func (w *Walker) edgeW(v graph.NodeID) graph.Weight {
	if w.pw == nil {
		return 1
	}
	return w.pw[v]
}
