package tree

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// checkNavParity compares every Nav query of imp against the explicit
// lifted tree on all parents, sampled distances and next hops.
func checkNavParity(t *testing.T, exp *Tree, imp Nav, rng *rand.Rand, pairs int) {
	t.Helper()
	n := exp.NumNodes()
	if got := imp.NumNodes(); got != n {
		t.Fatalf("NumNodes = %d, want %d", got, n)
	}
	if got := imp.Root(); got != exp.Root() {
		t.Fatalf("Root = %d, want %d", got, exp.Root())
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		if got, want := imp.Parent(id), exp.Parent(id); got != want {
			t.Fatalf("Parent(%d) = %d, want %d", v, got, want)
		}
		if id != exp.Root() {
			if got, want := imp.ParentWeight(id), exp.ParentWeight(id); got != want {
				t.Fatalf("ParentWeight(%d) = %d, want %d", v, got, want)
			}
		}
	}
	for i := 0; i < pairs; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if got, want := imp.Dist(u, v), exp.Dist(u, v); got != want {
			t.Fatalf("Dist(%d, %d) = %d, want %d", u, v, got, want)
		}
		if u == v {
			continue
		}
		if got, want := imp.NextHop(u, v), exp.NextHop(u, v); got != want {
			t.Fatalf("NextHop(%d, %d) = %d, want %d", u, v, got, want)
		}
	}
}

// TestWalkerMatchesTreeRandom is the quickcheck pin for the implicit
// topology layer: on random parent arrays (with and without random
// weights) the Walker's parent-walk answers must match the explicit
// Tree's LCA-table answers query for query.
func TestWalkerMatchesTreeRandom(t *testing.T) {
	sizes := []int{1, 2, 3, 5, 17, 64, 257, 1000}
	for _, n := range sizes {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed*7919 + int64(n)))
			parent := make([]graph.NodeID, n)
			pw := make([]graph.Weight, n)
			pw[0] = 1 // root's weight is ignored by both builders
			for v := 1; v < n; v++ {
				parent[v] = graph.NodeID(rng.Intn(v))
				pw[v] = graph.Weight(1 + rng.Intn(9))
			}
			exp := MustFromParents(0, parent, pw)

			w, err := WalkerFromParents(0, parent, pw)
			if err != nil {
				t.Fatalf("n=%d seed=%d: WalkerFromParents: %v", n, seed, err)
			}
			checkNavParity(t, exp, w, rng, 200)

			// Unit-weight variant: nil pw on the walker, explicit ones on
			// the lifted tree.
			ones := make([]graph.Weight, n)
			for i := range ones {
				ones[i] = 1
			}
			expUnit := MustFromParents(0, parent, ones)
			wUnit, err := WalkerFromParents(0, parent, nil)
			if err != nil {
				t.Fatalf("n=%d seed=%d: unit WalkerFromParents: %v", n, seed, err)
			}
			checkNavParity(t, expUnit, wUnit, rng, 200)
		}
	}
}

// TestWalkerShapesMatchBuilders pins the generator-shaped walkers
// against the explicit builders they mirror.
func TestWalkerShapesMatchBuilders(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 7, 64, 513} {
		checkNavParity(t, BalancedBinary(n), BinaryWalker(n), rng, 300)
		checkNavParity(t, PathTree(n), PathWalker(n), rng, 300)
		checkNavParity(t, StarTree(n), StarWalker(n), rng, 300)
	}
}

// TestGridNavMatchesExplicitComb pins the closed-form grid navigator
// against an explicit comb tree built from the same parent rule.
func TestGridNavMatchesExplicitComb(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][2]int{{1, 1}, {1, 8}, {8, 1}, {4, 5}, {13, 9}, {32, 32}} {
		rows, cols := dims[0], dims[1]
		n := rows * cols
		parent := make([]graph.NodeID, n)
		pw := make([]graph.Weight, n)
		for v := 0; v < n; v++ {
			r, c := v/cols, v%cols
			pw[v] = 1
			switch {
			case c > 0:
				parent[v] = graph.NodeID(v - 1)
			case r > 0:
				parent[v] = graph.NodeID((r - 1) * cols)
			default:
				parent[v] = graph.NodeID(v)
			}
		}
		exp := MustFromParents(0, parent, pw)
		checkNavParity(t, exp, GridWalker(rows, cols), rng, 500)
	}
}

// TestWalkerFromParentsRejectsBadInput mirrors FromParents validation.
func TestWalkerFromParentsRejectsBadInput(t *testing.T) {
	if _, err := WalkerFromParents(0, nil, nil); err == nil {
		t.Fatal("empty parent array accepted")
	}
	if _, err := WalkerFromParents(3, []graph.NodeID{0, 0}, nil); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := WalkerFromParents(0, []graph.NodeID{1, 0}, nil); err == nil {
		t.Fatal("root with foreign parent accepted")
	}
	// Two-node cycle detached from the root.
	if _, err := WalkerFromParents(0, []graph.NodeID{0, 2, 1}, nil); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := WalkerFromParents(0, []graph.NodeID{0, 1}, nil); err == nil {
		t.Fatal("non-root self-parent accepted")
	}
	if _, err := WalkerFromParents(0, []graph.NodeID{0, 0}, []graph.Weight{0, 0}); err == nil {
		t.Fatal("non-positive weight accepted")
	}
}
