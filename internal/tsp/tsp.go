// Package tsp provides the travelling-salesperson machinery the paper's
// analysis relies on: the nearest-neighbour heuristic (which characterizes
// arrow's queuing order, Lemma 3.8), an exact Held–Karp solver used as
// ground truth on small instances, and MST-based bounds used for the
// Manhattan-metric lower bound (Lemma 3.16).
//
// All functions operate over an abstract pairwise cost on points 0..n-1
// where point 0 is the fixed start (the virtual root request). Costs may
// be asymmetric — cT is — unless a function documents otherwise.
package tsp

import (
	"fmt"
	"math"
)

// Cost is a pairwise cost function over points 0..n-1. c(i,j) is the cost
// of visiting j immediately after i.
type Cost func(i, j int) int64

// NearestNeighborPath computes the NN path over n points starting at
// point 0: repeatedly move to an unvisited point of minimum cost from the
// current point, ties broken by lowest index (deterministic). It returns
// the visit order (starting with 0) and the total path cost.
//
// This mirrors eqs. (6)–(7): arrow's queuing order is exactly this path
// under cT with point 0 = the root request.
func NearestNeighborPath(n int, c Cost) ([]int, int64) {
	if n <= 0 {
		return nil, 0
	}
	order := make([]int, 0, n)
	visited := make([]bool, n)
	cur := 0
	visited[0] = true
	order = append(order, 0)
	var total int64
	for len(order) < n {
		best := -1
		var bestCost int64 = math.MaxInt64
		for j := 0; j < n; j++ {
			if visited[j] {
				continue
			}
			if cc := c(cur, j); cc < bestCost {
				bestCost = cc
				best = j
			}
		}
		visited[best] = true
		order = append(order, best)
		total += bestCost
		cur = best
	}
	return order, total
}

// NearestNeighborTies returns every NN path obtainable under some
// tie-breaking rule... exploring all ties is exponential, so the search
// is capped at maxPaths results; the bool reports whether the enumeration
// was exhaustive. Used by tests to validate Lemma 3.8 when simultaneous
// requests make the NN order non-unique.
func NearestNeighborTies(n int, c Cost, maxPaths int) ([][]int, bool) {
	var out [][]int
	visited := make([]bool, n)
	order := make([]int, 0, n)
	exhaustive := true
	var rec func(cur int)
	rec = func(cur int) {
		if len(out) >= maxPaths {
			exhaustive = false
			return
		}
		if len(order) == n {
			out = append(out, append([]int(nil), order...))
			return
		}
		var bestCost int64 = math.MaxInt64
		for j := 0; j < n; j++ {
			if !visited[j] {
				if cc := c(cur, j); cc < bestCost {
					bestCost = cc
				}
			}
		}
		for j := 0; j < n; j++ {
			if !visited[j] && c(cur, j) == bestCost {
				visited[j] = true
				order = append(order, j)
				rec(j)
				order = order[:len(order)-1]
				visited[j] = false
				if len(out) >= maxPaths {
					return
				}
			}
		}
	}
	visited[0] = true
	order = append(order, 0)
	rec(0)
	return out, exhaustive
}

// MaxExactN bounds the instance size accepted by the exact solvers
// (Held–Karp uses O(2^n · n) memory).
const MaxExactN = 20

// OptimalPath solves the open TSP path exactly with Held–Karp dynamic
// programming: minimum-cost path starting at point 0 and visiting all n
// points. Cost may be asymmetric. n must be at most MaxExactN.
func OptimalPath(n int, c Cost) ([]int, int64, error) {
	if n <= 0 {
		return nil, 0, nil
	}
	if n > MaxExactN {
		return nil, 0, fmt.Errorf("tsp: exact solver limited to %d points, got %d", MaxExactN, n)
	}
	if n == 1 {
		return []int{0}, 0, nil
	}
	m := n - 1 // points 1..n-1 get mask bits 0..m-1
	size := 1 << m
	const inf = int64(math.MaxInt64 / 4)
	// dp[mask][j]: min cost of a path 0 -> ... -> (j+1) visiting exactly
	// the points of mask (bit i = point i+1), ending at point j+1.
	dp := make([][]int64, size)
	par := make([][]int8, size)
	for mask := 1; mask < size; mask++ {
		dp[mask] = make([]int64, m)
		par[mask] = make([]int8, m)
		for j := range dp[mask] {
			dp[mask][j] = inf
			par[mask][j] = -1
		}
	}
	for j := 0; j < m; j++ {
		dp[1<<j][j] = c(0, j+1)
	}
	for mask := 1; mask < size; mask++ {
		for j := 0; j < m; j++ {
			if mask&(1<<j) == 0 || dp[mask][j] >= inf {
				continue
			}
			base := dp[mask][j]
			for k := 0; k < m; k++ {
				if mask&(1<<k) != 0 {
					continue
				}
				nm := mask | 1<<k
				if cand := base + c(j+1, k+1); cand < dp[nm][k] {
					dp[nm][k] = cand
					par[nm][k] = int8(j)
				}
			}
		}
	}
	full := size - 1
	bestEnd, bestCost := -1, inf
	for j := 0; j < m; j++ {
		if dp[full][j] < bestCost {
			bestCost = dp[full][j]
			bestEnd = j
		}
	}
	order := make([]int, 0, n)
	mask, j := full, bestEnd
	for j >= 0 {
		order = append(order, j+1)
		pj := par[mask][j]
		mask ^= 1 << j
		j = int(pj)
	}
	order = append(order, 0)
	for i, k := 0, len(order)-1; i < k; i, k = i+1, k-1 {
		order[i], order[k] = order[k], order[i]
	}
	return order, bestCost, nil
}

// OptimalTour solves the closed TSP tour exactly (returns to point 0).
func OptimalTour(n int, c Cost) (int64, error) {
	if n <= 1 {
		return 0, nil
	}
	if n > MaxExactN {
		return 0, fmt.Errorf("tsp: exact solver limited to %d points, got %d", MaxExactN, n)
	}
	m := n - 1
	size := 1 << m
	const inf = int64(math.MaxInt64 / 4)
	dp := make([][]int64, size)
	for mask := 1; mask < size; mask++ {
		dp[mask] = make([]int64, m)
		for j := range dp[mask] {
			dp[mask][j] = inf
		}
	}
	for j := 0; j < m; j++ {
		dp[1<<j][j] = c(0, j+1)
	}
	for mask := 1; mask < size; mask++ {
		for j := 0; j < m; j++ {
			if mask&(1<<j) == 0 || dp[mask][j] >= inf {
				continue
			}
			base := dp[mask][j]
			for k := 0; k < m; k++ {
				if mask&(1<<k) != 0 {
					continue
				}
				nm := mask | 1<<k
				if cand := base + c(j+1, k+1); cand < dp[nm][k] {
					dp[nm][k] = cand
				}
			}
		}
	}
	full := size - 1
	best := inf
	for j := 0; j < m; j++ {
		if dp[full][j] < inf {
			if cand := dp[full][j] + c(j+1, 0); cand < best {
				best = cand
			}
		}
	}
	return best, nil
}

// PathCost sums c over consecutive pairs of order.
func PathCost(order []int, c Cost) int64 {
	var total int64
	for i := 1; i < len(order); i++ {
		total += c(order[i-1], order[i])
	}
	return total
}

// MSTWeight returns the weight of a minimum spanning tree over n points
// under the symmetric cost c (Prim, O(n^2)). Any path visiting all points
// weighs at least this, which is the bound Lemma 3.16 exploits for the
// Manhattan metric.
func MSTWeight(n int, c Cost) int64 {
	if n <= 1 {
		return 0
	}
	const inf = int64(math.MaxInt64 / 4)
	best := make([]int64, n)
	in := make([]bool, n)
	for i := range best {
		best[i] = inf
	}
	best[0] = 0
	var total int64
	for iter := 0; iter < n; iter++ {
		u, ub := -1, inf
		for v := 0; v < n; v++ {
			if !in[v] && best[v] < ub {
				ub = best[v]
				u = v
			}
		}
		in[u] = true
		total += ub
		for v := 0; v < n; v++ {
			if !in[v] {
				if cc := c(u, v); cc < best[v] {
					best[v] = cc
				}
			}
		}
	}
	return total
}

// GreedyEdgePath builds a path via double-ended greedy (Christofides-free
// 2-approximation style): it is an additional heuristic used to produce
// good achievable orders against which arrow is compared. The cost must be
// symmetric for the approximation property, but the function accepts any
// cost. Returns the order starting at 0 and its cost under c.
func GreedyEdgePath(n int, c Cost) ([]int, int64) {
	// Start from the NN path and improve with 2-opt-style segment
	// reversals until no improvement (capped passes keep this O(n^2·k)).
	order, _ := NearestNeighborPath(n, c)
	improved := true
	for pass := 0; improved && pass < 16; pass++ {
		improved = false
		for i := 1; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				// Reverse order[i..j]; delta for an open path.
				before := c(order[i-1], order[i])
				if j+1 < n {
					before += c(order[j], order[j+1])
				}
				after := c(order[i-1], order[j])
				if j+1 < n {
					after += c(order[i], order[j+1])
				}
				// Interior arcs change direction; with asymmetric costs we
				// must recompute them.
				var beforeIn, afterIn int64
				for k := i; k < j; k++ {
					beforeIn += c(order[k], order[k+1])
					afterIn += c(order[k+1], order[k])
				}
				if after+afterIn < before+beforeIn {
					for a, b := i, j; a < b; a, b = a+1, b-1 {
						order[a], order[b] = order[b], order[a]
					}
					improved = true
				}
			}
		}
	}
	return order, PathCost(order, c)
}
