package tsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// lineCost places points on a line at the given coordinates.
func lineCost(coords []int64) Cost {
	return func(i, j int) int64 {
		d := coords[i] - coords[j]
		if d < 0 {
			d = -d
		}
		return d
	}
}

func randMetric(n int, seed int64) Cost {
	// Random symmetric metric via random points in the plane (L1).
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(100))
		ys[i] = int64(rng.Intn(100))
	}
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	return func(i, j int) int64 { return abs(xs[i]-xs[j]) + abs(ys[i]-ys[j]) }
}

func TestNearestNeighborLine(t *testing.T) {
	// Points 0, 1, 2, 10: NN from 0 sweeps right.
	c := lineCost([]int64{0, 1, 2, 10})
	order, cost := NearestNeighborPath(4, c)
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("NN order %v, want %v", order, want)
		}
	}
	if cost != 10 {
		t.Errorf("NN cost %d, want 10", cost)
	}
}

func TestNearestNeighborDeterministicTieBreak(t *testing.T) {
	// Two equidistant choices: lowest index wins.
	c := lineCost([]int64{0, 1, -1})
	order, _ := NearestNeighborPath(3, c)
	if order[1] != 1 {
		t.Errorf("tie should pick lower index; got %v", order)
	}
}

func TestNearestNeighborEmptyAndSingle(t *testing.T) {
	if o, c := NearestNeighborPath(0, nil); o != nil || c != 0 {
		t.Error("empty instance should be trivial")
	}
	o, c := NearestNeighborPath(1, lineCost([]int64{5}))
	if len(o) != 1 || o[0] != 0 || c != 0 {
		t.Error("single point should be trivial")
	}
}

func TestNearestNeighborTiesEnumeration(t *testing.T) {
	// Symmetric instance: 0 at origin, 1 and 2 both at distance 1,
	// distance between 1 and 2 is 2. Two NN paths exist.
	c := lineCost([]int64{0, 1, -1})
	paths, exhaustive := NearestNeighborTies(3, c, 10)
	if !exhaustive {
		t.Fatal("tiny instance should be exhaustive")
	}
	if len(paths) != 2 {
		t.Fatalf("expected 2 NN paths, got %d", len(paths))
	}
	cap1, _ := NearestNeighborTies(3, c, 1)
	if len(cap1) != 1 {
		t.Error("cap not respected")
	}
}

func TestOptimalPathKnownInstance(t *testing.T) {
	// Points on a line: 0, 10, 1, 2. Optimal path from 0 visits 1,2 then 10.
	c := lineCost([]int64{0, 10, 1, 2})
	order, cost, err := OptimalPath(4, c)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 10 {
		t.Errorf("optimal cost %d, want 10", cost)
	}
	if order[0] != 0 {
		t.Errorf("path must start at 0: %v", order)
	}
}

func TestOptimalPathRejectsLarge(t *testing.T) {
	if _, _, err := OptimalPath(MaxExactN+1, func(i, j int) int64 { return 1 }); err == nil {
		t.Error("expected size error")
	}
	if _, err := OptimalTour(MaxExactN+1, func(i, j int) int64 { return 1 }); err == nil {
		t.Error("expected size error")
	}
}

func TestOptimalPathTrivialSizes(t *testing.T) {
	if o, c, err := OptimalPath(1, nil); err != nil || c != 0 || len(o) != 1 {
		t.Error("singleton path wrong")
	}
	if _, c, err := OptimalPath(2, lineCost([]int64{0, 7})); err != nil || c != 7 {
		t.Error("two-point path wrong")
	}
	if c, err := OptimalTour(2, lineCost([]int64{0, 7})); err != nil || c != 14 {
		t.Errorf("two-point tour = %d, want 14", c)
	}
}

func TestOptimalPathVisitsAll(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		n := 5 + int(seed)
		if n > 10 {
			n = 10
		}
		c := randMetric(n, seed)
		order, cost, err := OptimalPath(n, c)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, p := range order {
			if seen[p] {
				t.Fatalf("seed %d: point %d visited twice", seed, p)
			}
			seen[p] = true
		}
		if PathCost(order, c) != cost {
			t.Fatalf("seed %d: reported cost %d != recomputed %d", seed, cost, PathCost(order, c))
		}
	}
}

func TestOptimalBeatsNN(t *testing.T) {
	prop := func(seed int64) bool {
		n := 4 + int(seed%8+8)%8
		c := randMetric(n, seed)
		_, nn := NearestNeighborPath(n, c)
		_, opt, err := OptimalPath(n, c)
		if err != nil {
			return false
		}
		return opt <= nn
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestOptimalPathBruteForceCrossCheck(t *testing.T) {
	// Exhaustive permutation check on tiny instances.
	for seed := int64(0); seed < 8; seed++ {
		n := 5
		c := randMetric(n, seed)
		_, hk, err := OptimalPath(n, c)
		if err != nil {
			t.Fatal(err)
		}
		best := int64(math.MaxInt64)
		perm := []int{1, 2, 3, 4}
		var rec func(k int)
		rec = func(k int) {
			if k == len(perm) {
				cost := c(0, perm[0])
				for i := 1; i < len(perm); i++ {
					cost += c(perm[i-1], perm[i])
				}
				if cost < best {
					best = cost
				}
				return
			}
			for i := k; i < len(perm); i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k + 1)
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0)
		if hk != best {
			t.Errorf("seed %d: Held-Karp %d != brute force %d", seed, hk, best)
		}
	}
}

func TestOptimalTourAtLeastPath(t *testing.T) {
	prop := func(seed int64) bool {
		n := 4 + int(seed%6+6)%6
		c := randMetric(n, seed)
		_, p, err := OptimalPath(n, c)
		if err != nil {
			return false
		}
		tour, err := OptimalTour(n, c)
		if err != nil {
			return false
		}
		return tour >= p
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMSTWeightLowerBoundsPath(t *testing.T) {
	// Any Hamiltonian path weighs at least the MST.
	prop := func(seed int64) bool {
		n := 4 + int(seed%8+8)%8
		c := randMetric(n, seed)
		mst := MSTWeight(n, c)
		_, opt, err := OptimalPath(n, c)
		if err != nil {
			return false
		}
		return mst <= opt
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMSTWeightKnown(t *testing.T) {
	// Line 0-1-2-3 with unit gaps: MST weight 3.
	if w := MSTWeight(4, lineCost([]int64{0, 1, 2, 3})); w != 3 {
		t.Errorf("MST weight = %d, want 3", w)
	}
	if w := MSTWeight(1, nil); w != 0 {
		t.Errorf("singleton MST = %d", w)
	}
}

func TestGreedyEdgePathImprovesOrMatchesNN(t *testing.T) {
	prop := func(seed int64) bool {
		n := 5 + int(seed%8+8)%8
		c := randMetric(n, seed)
		_, nn := NearestNeighborPath(n, c)
		order, cost := GreedyEdgePath(n, c)
		if len(order) != n || order[0] != 0 {
			return false
		}
		seen := make([]bool, n)
		for _, p := range order {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return cost <= nn
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNearestNeighborApproximationTheorem318 validates the paper's
// generalized NN bound: CN <= 3/2·ceil(log2(DNN/dNN))·CO (stated for
// tours; paths add at most a factor 2). We verify the measured ratio
// never exceeds the bound on random instances where dn <= do pointwise.
func TestNearestNeighborApproximationTheorem318(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		n := 6 + int(seed%7)
		do := randMetric(n, seed)
		// dn: a random "shrunken" cost below the metric (like cT <= cM).
		rng := rand.New(rand.NewSource(seed * 31))
		shrink := make([]int64, n*n)
		for i := range shrink {
			shrink[i] = int64(rng.Intn(3))
		}
		dn := func(i, j int) int64 {
			v := do(i, j) - shrink[i*n+j]
			if v < 0 {
				v = 0
			}
			return v
		}
		_, cn := NearestNeighborPath(n, dn)
		co, err := OptimalTour(n, do)
		if err != nil {
			t.Fatal(err)
		}
		if co == 0 {
			continue
		}
		// Edge scale range on the NN path under dn.
		order, _ := NearestNeighborPath(n, dn)
		var dmin, dmax int64 = math.MaxInt64, 1
		for i := 1; i < n; i++ {
			c := dn(order[i-1], order[i])
			if c > 0 {
				if c < dmin {
					dmin = c
				}
				if c > dmax {
					dmax = c
				}
			}
		}
		if dmin == math.MaxInt64 {
			continue
		}
		classes := math.Ceil(math.Log2(float64(dmax)/float64(dmin))) + 1
		bound := 1.5 * classes * float64(co)
		if float64(cn) > bound+1e-9 {
			t.Errorf("seed %d: NN cost %d exceeds Theorem 3.18 bound %.1f (opt %d, classes %.0f)",
				seed, cn, bound, co, classes)
		}
	}
}
