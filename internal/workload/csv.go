package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
)

// WriteCSV serializes a request set as CSV with a header row
// (node,time), one request per line. Together with ReadCSV it makes
// experiment workloads portable and reproducible across runs and tools.
func WriteCSV(w io.Writer, set queuing.Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"node", "time"}); err != nil {
		return fmt.Errorf("workload: writing header: %w", err)
	}
	for _, r := range set {
		rec := []string{
			strconv.FormatInt(int64(r.Node), 10),
			strconv.FormatInt(r.Time, 10),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("workload: writing request %d: %w", r.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a request set written by WriteCSV (or by hand). The
// result is normalized with queuing.NewSet. numNodes bounds the node IDs;
// pass 0 to skip validation.
func ReadCSV(r io.Reader, numNodes int) (queuing.Set, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("workload: empty csv")
	}
	if records[0][0] != "node" || records[0][1] != "time" {
		return nil, fmt.Errorf("workload: missing header row, got %v", records[0])
	}
	reqs := make([]queuing.Request, 0, len(records)-1)
	for i, rec := range records[1:] {
		node, err := strconv.ParseInt(rec[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad node %q", i+2, rec[0])
		}
		t, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: bad time %q", i+2, rec[1])
		}
		if t < 0 {
			return nil, fmt.Errorf("workload: line %d: negative time %d", i+2, t)
		}
		reqs = append(reqs, queuing.Request{Node: graph.NodeID(node), Time: sim.Time(t)})
	}
	set := queuing.NewSet(reqs)
	if numNodes > 0 {
		if err := set.Validate(numNodes); err != nil {
			return nil, err
		}
	}
	return set, nil
}
