package workload

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestCSVRoundTrip(t *testing.T) {
	set := Poisson(16, 0.5, 100, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Fatalf("round trip size %d != %d", len(got), len(set))
	}
	for i := range set {
		if got[i] != set[i] {
			t.Fatalf("request %d: %v != %v", i, got[i], set[i])
		}
	}
}

func TestCSVRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		n := 4 + int(seed%12+12)%12
		set := Bursty(n, 3, 2, 10, seed)
		var buf bytes.Buffer
		if WriteCSV(&buf, set) != nil {
			return false
		}
		got, err := ReadCSV(&buf, n)
		if err != nil || len(got) != len(set) {
			return false
		}
		for i := range set {
			if got[i] != set[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"no-header", "1,2\n"},
		{"bad-node", "node,time\nx,1\n"},
		{"bad-time", "node,time\n1,y\n"},
		{"negative-time", "node,time\n1,-5\n"},
		{"wrong-fields", "node,time\n1\n"},
		{"node-out-of-range", "node,time\n99,0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(tc.in), 8); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadCSVHandEdited(t *testing.T) {
	in := "node,time\n3,10\n1,0\n3,5\n"
	set, err := ReadCSV(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	// NewSet normalization sorts by time.
	if set[0].Node != 1 || set[1].Time != 5 || set[2].Time != 10 {
		t.Errorf("normalization wrong: %v", set)
	}
}
