package workload

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
)

// LowerBoundInstance is the recursive adversarial request set of
// Theorem 4.1, defined on the path v0..vD (D a power of two) with the
// initial root at v0. Arrow orders the requests level by level in time,
// sweeping the whole path once per level (cost ~ k·D), while an optimal
// offline order pays only O(D).
type LowerBoundInstance struct {
	// D is the path length (diameter of the spanning tree).
	D int
	// K is the recursion depth (the paper sets k ≈ log D / log log D).
	K int
	// Root is the initial queue tail, v0.
	Root graph.NodeID
	// Set is the generated request set.
	Set queuing.Set
}

// DefaultK returns the paper's choice k = ⌊log D / log log D⌋ rounded
// down to an even integer, and at least 2.
func DefaultK(d int) int {
	if d < 4 {
		return 2
	}
	logD := math.Log2(float64(d))
	k := int(logD / math.Log2(logD))
	if k%2 == 1 {
		k--
	}
	if k < 2 {
		k = 2
	}
	return k
}

// LowerBound generates the Theorem 4.1 instance for a path of length
// d = 2^logD with recursion depth k. Duplicate (node, time) pairs arising
// from overlapping recursion branches are emitted once. The construction:
//
//   - seed request (v_D, k) of "size" log2 D and direction +1;
//   - a request (v_i, t, s, dir) with t > 0 spawns (v_{i−dir·2^j}, t−1, j,
//     −dir) for j = 0..s−1;
//   - additionally v_0 and v_D issue requests at every time 0..k−1.
func LowerBound(logD, k int) LowerBoundInstance {
	if logD < 1 || logD > 24 {
		panic(fmt.Sprintf("workload: logD=%d out of range [1,24]", logD))
	}
	if k < 1 {
		panic("workload: k must be >= 1")
	}
	d := 1 << logD
	type frame struct {
		pos, t, size, dir int
	}
	seen := make(map[[2]int]bool)
	var reqs []queuing.Request
	emit := func(pos, t int) {
		if pos < 0 || pos > d {
			// The recursion is position-safe for the seed parameters the
			// paper uses; clamp defensively for exotic (logD, k) choices.
			return
		}
		key := [2]int{pos, t}
		if seen[key] {
			return
		}
		seen[key] = true
		reqs = append(reqs, queuing.Request{Node: graph.NodeID(pos), Time: sim.Time(t)})
	}
	stack := []frame{{pos: d, t: k, size: logD, dir: +1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		emit(f.pos, f.t)
		if f.t <= 0 {
			continue
		}
		for j := 0; j < f.size; j++ {
			stack = append(stack, frame{
				pos:  f.pos - f.dir*(1<<j),
				t:    f.t - 1,
				size: j,
				dir:  -f.dir,
			})
		}
	}
	for t := 0; t < k; t++ {
		emit(0, t)
		emit(d, t)
	}
	return LowerBoundInstance{
		D:    d,
		K:    k,
		Root: 0,
		Set:  queuing.NewSet(reqs),
	}
}
