// Package workload generates the request sets driving the experiments:
// the concurrency regimes discussed in the paper (one-shot simultaneous
// requests, sequential well-spaced requests, dynamic arrivals) and the
// adversarial recursive instance of Theorem 4.1.
package workload

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
)

// OneShot returns k simultaneous requests (all at t = 0) at k distinct
// random nodes of an n-node network — the setting of the PODC'01
// precursor paper [10]. k must be at most n.
func OneShot(n, k int, seed int64) queuing.Set {
	if k > n {
		panic("workload: more one-shot requests than nodes")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	reqs := make([]queuing.Request, k)
	for i := 0; i < k; i++ {
		reqs[i] = queuing.Request{Node: graph.NodeID(perm[i]), Time: 0}
	}
	return queuing.NewSet(reqs)
}

// Sequential returns count requests at random nodes spaced gap time units
// apart. With gap > 2D no two requests are concurrently active, which is
// the sequential regime of Demmer–Herlihy: per-operation cost <= D and
// competitive ratio <= s.
func Sequential(n, count int, gap sim.Time, seed int64) queuing.Set {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]queuing.Request, count)
	for i := range reqs {
		reqs[i] = queuing.Request{
			Node: graph.NodeID(rng.Intn(n)),
			Time: sim.Time(i) * gap,
		}
	}
	return queuing.NewSet(reqs)
}

// Poisson returns requests arriving as a Poisson process of the given
// rate (expected requests per time unit) over [0, horizon), each at a
// uniformly random node. The returned set size is random; use the seed to
// reproduce it.
func Poisson(n int, rate float64, horizon sim.Time, seed int64) queuing.Set {
	if rate <= 0 {
		panic("workload: rate must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	var reqs []queuing.Request
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if sim.Time(t) >= horizon {
			break
		}
		reqs = append(reqs, queuing.Request{
			Node: graph.NodeID(rng.Intn(n)),
			Time: sim.Time(t),
		})
	}
	return queuing.NewSet(reqs)
}

// Bursty returns `bursts` bursts of burstSize near-simultaneous requests
// (random nodes, jitter in [0, burstSize)), with consecutive bursts
// separated by burstGap. High-contention phases alternating with silence —
// the regime Lemma 3.11's time-shifting argument addresses.
func Bursty(n, burstSize, bursts int, burstGap sim.Time, seed int64) queuing.Set {
	rng := rand.New(rand.NewSource(seed))
	var reqs []queuing.Request
	for b := 0; b < bursts; b++ {
		base := sim.Time(b) * burstGap
		for i := 0; i < burstSize; i++ {
			reqs = append(reqs, queuing.Request{
				Node: graph.NodeID(rng.Intn(n)),
				Time: base + sim.Time(rng.Intn(burstSize)),
			})
		}
	}
	return queuing.NewSet(reqs)
}

// Hotspot returns count requests over [0, horizon) where a fraction
// hotFrac of requests hit a single hot node and the rest are uniform.
// Models contended shared objects (e.g. a hot lock).
func Hotspot(n, count int, hotFrac float64, horizon sim.Time, seed int64) queuing.Set {
	if hotFrac < 0 || hotFrac > 1 {
		panic("workload: hotFrac must be in [0,1]")
	}
	rng := rand.New(rand.NewSource(seed))
	hot := graph.NodeID(rng.Intn(n))
	reqs := make([]queuing.Request, count)
	for i := range reqs {
		node := hot
		if rng.Float64() >= hotFrac {
			node = graph.NodeID(rng.Intn(n))
		}
		reqs[i] = queuing.Request{Node: node, Time: sim.Time(rng.Int63n(int64(horizon)))}
	}
	return queuing.NewSet(reqs)
}

// TwoNodePingPong returns count alternating requests from the two
// endpoints of a diameter path, spaced gap apart. The workload of the
// Ω(s) part of Theorem 4.1's lower bound.
func TwoNodePingPong(u, v graph.NodeID, count int, gap sim.Time) queuing.Set {
	reqs := make([]queuing.Request, count)
	for i := range reqs {
		node := u
		if i%2 == 1 {
			node = v
		}
		reqs[i] = queuing.Request{Node: node, Time: sim.Time(i) * gap}
	}
	return queuing.NewSet(reqs)
}
