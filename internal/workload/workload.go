// Package workload generates the request sets driving the experiments:
// the concurrency regimes discussed in the paper (one-shot simultaneous
// requests, sequential well-spaced requests, dynamic arrivals) and the
// adversarial recursive instance of Theorem 4.1.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/queuing"
	"repro/internal/sim"
)

// require panics with a descriptive workload error unless cond holds.
// The generators validate their inputs eagerly so a bad parameter fails
// with a named constraint instead of surfacing later as an opaque rand
// panic (e.g. rand.Int63n(0)) or a silently empty request set.
func require(cond bool, constraint string) {
	if !cond {
		panic(fmt.Sprintf("workload: %s", constraint))
	}
}

// OneShot returns k simultaneous requests (all at t = 0) at k distinct
// random nodes of an n-node network — the setting of the PODC'01
// precursor paper [10]. k must be at most n.
func OneShot(n, k int, seed int64) queuing.Set {
	require(n >= 1, "OneShot needs n >= 1")
	require(k >= 0, "OneShot needs k >= 0")
	require(k <= n, "OneShot needs k <= n (distinct nodes)")
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	reqs := make([]queuing.Request, k)
	for i := 0; i < k; i++ {
		reqs[i] = queuing.Request{Node: graph.NodeID(perm[i]), Time: 0}
	}
	return queuing.NewSet(reqs)
}

// Sequential returns count requests at random nodes spaced gap time units
// apart. With gap > 2D no two requests are concurrently active, which is
// the sequential regime of Demmer–Herlihy: per-operation cost <= D and
// competitive ratio <= s.
func Sequential(n, count int, gap sim.Time, seed int64) queuing.Set {
	require(n >= 1, "Sequential needs n >= 1")
	require(count >= 0, "Sequential needs count >= 0")
	require(gap >= 0, "Sequential needs gap >= 0")
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]queuing.Request, count)
	for i := range reqs {
		reqs[i] = queuing.Request{
			Node: graph.NodeID(rng.Intn(n)),
			Time: sim.Time(i) * gap,
		}
	}
	return queuing.NewSet(reqs)
}

// Poisson returns requests arriving as a Poisson process of the given
// rate (expected requests per time unit) over [0, horizon), each at a
// uniformly random node. The returned set size is random; use the seed to
// reproduce it.
func Poisson(n int, rate float64, horizon sim.Time, seed int64) queuing.Set {
	require(n >= 1, "Poisson needs n >= 1")
	require(rate > 0, "Poisson needs rate > 0")
	require(horizon >= 0, "Poisson needs horizon >= 0")
	rng := rand.New(rand.NewSource(seed))
	var reqs []queuing.Request
	t := 0.0
	for {
		t += rng.ExpFloat64() / rate
		if sim.Time(t) >= horizon {
			break
		}
		reqs = append(reqs, queuing.Request{
			Node: graph.NodeID(rng.Intn(n)),
			Time: sim.Time(t),
		})
	}
	return queuing.NewSet(reqs)
}

// Bursty returns `bursts` bursts of burstSize near-simultaneous requests
// (random nodes, jitter in [0, burstSize)), with consecutive bursts
// separated by burstGap. High-contention phases alternating with silence —
// the regime Lemma 3.11's time-shifting argument addresses.
func Bursty(n, burstSize, bursts int, burstGap sim.Time, seed int64) queuing.Set {
	require(n >= 1, "Bursty needs n >= 1")
	require(burstSize >= 1, "Bursty needs burstSize >= 1")
	require(bursts >= 0, "Bursty needs bursts >= 0")
	require(burstGap >= 0, "Bursty needs burstGap >= 0")
	rng := rand.New(rand.NewSource(seed))
	var reqs []queuing.Request
	for b := 0; b < bursts; b++ {
		base := sim.Time(b) * burstGap
		for i := 0; i < burstSize; i++ {
			reqs = append(reqs, queuing.Request{
				Node: graph.NodeID(rng.Intn(n)),
				Time: base + sim.Time(rng.Intn(burstSize)),
			})
		}
	}
	return queuing.NewSet(reqs)
}

// Hotspot returns count requests over [0, horizon) where a fraction
// hotFrac of requests hit a single hot node and the rest are uniform.
// Models contended shared objects (e.g. a hot lock).
func Hotspot(n, count int, hotFrac float64, horizon sim.Time, seed int64) queuing.Set {
	require(n >= 1, "Hotspot needs n >= 1")
	require(count >= 0, "Hotspot needs count >= 0")
	require(hotFrac >= 0 && hotFrac <= 1, "Hotspot needs hotFrac in [0,1]")
	// horizon bounds the rand.Int63n draw below; 0 or negative would
	// panic inside the RNG with no hint at which parameter was wrong.
	require(horizon >= 1, "Hotspot needs horizon >= 1")
	rng := rand.New(rand.NewSource(seed))
	hot := graph.NodeID(rng.Intn(n))
	reqs := make([]queuing.Request, count)
	for i := range reqs {
		node := hot
		if rng.Float64() >= hotFrac {
			node = graph.NodeID(rng.Intn(n))
		}
		reqs[i] = queuing.Request{Node: node, Time: sim.Time(rng.Int63n(int64(horizon)))}
	}
	return queuing.NewSet(reqs)
}

// Zipf is a deterministic Zipf-law sampler over k objects: object o
// (0-based) is drawn with probability proportional to (o+1)^-skew, so
// low-numbered objects are the hot ones. skew = 0 degenerates to the
// uniform distribution; skew around 1.1 is the classic hot-object regime
// where the head of the popularity law dominates.
//
// Sampling is counter-based rather than stream-based: Draw hashes a
// (node, request-index) pair through the simulator's splitmix mixer and
// inverts the CDF on the resulting uniform variate. No shared RNG stream
// is consumed, so concurrent drivers — in particular the multi-object
// shard driver under the lookahead-windowed parallel drain — draw object IDs
// that are bit-identical regardless of event interleaving or worker
// count.
type Zipf struct {
	k int
	// cum is the unnormalized CDF: cum[o] = Σ_{j<=o} (j+1)^-skew.
	// Inverting it directly (scaling the uniform variate by the total
	// instead of normalizing each weight) saves k divisions and keeps
	// the table exactly reproducible.
	cum []float64
}

// NewZipf builds the sampler's cumulative popularity table; O(k) space.
func NewZipf(k int, skew float64) *Zipf {
	require(k >= 1, "NewZipf needs k >= 1")
	require(skew >= 0, "NewZipf needs skew >= 0")
	z := &Zipf{k: k, cum: make([]float64, k)}
	total := 0.0
	for o := 0; o < k; o++ {
		w := 1.0
		if skew != 0 {
			w = math.Pow(float64(o+1), -skew)
		}
		total += w
		z.cum[o] = total
	}
	return z
}

// K returns the object count.
func (z *Zipf) K() int { return z.k }

// Sample maps a uniform variate u in [0,1) to an object by inverting the
// cumulative popularity table (binary search, O(log k)).
func (z *Zipf) Sample(u float64) int32 {
	i := sort.SearchFloat64s(z.cum, u*z.cum[z.k-1])
	if i >= z.k {
		// u*total can round up to exactly total; the last object owns
		// that boundary.
		i = z.k - 1
	}
	return int32(i)
}

// Draw returns the object of node's req-th request (req counts from 0).
// The draw is a pure function of (seed, node, req): two splitmix steps
// decorrelate the pair into an independent uniform variate, so adjacent
// nodes and consecutive requests land on unrelated objects.
func (z *Zipf) Draw(seed int64, node graph.NodeID, req int64) int32 {
	if z.k == 1 {
		return 0
	}
	h := sim.DeriveSeed(sim.DeriveSeed(seed, int(node)), int(req))
	// Top 53 bits → uniform in [0,1) at full float64 resolution.
	u := float64(uint64(h)>>11) * (1.0 / (1 << 53))
	return z.Sample(u)
}

// TwoNodePingPong returns count alternating requests from the two
// endpoints of a diameter path, spaced gap apart. The workload of the
// Ω(s) part of Theorem 4.1's lower bound.
func TwoNodePingPong(u, v graph.NodeID, count int, gap sim.Time) queuing.Set {
	require(u >= 0 && v >= 0, "TwoNodePingPong needs non-negative nodes")
	require(count >= 0, "TwoNodePingPong needs count >= 0")
	require(gap >= 0, "TwoNodePingPong needs gap >= 0")
	reqs := make([]queuing.Request, count)
	for i := range reqs {
		node := u
		if i%2 == 1 {
			node = v
		}
		reqs[i] = queuing.Request{Node: node, Time: sim.Time(i) * gap}
	}
	return queuing.NewSet(reqs)
}
