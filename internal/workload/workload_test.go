package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/queuing"
)

func TestOneShot(t *testing.T) {
	set := OneShot(20, 8, 1)
	if len(set) != 8 {
		t.Fatalf("|R| = %d, want 8", len(set))
	}
	seen := map[int32]bool{}
	for _, r := range set {
		if r.Time != 0 {
			t.Errorf("one-shot request at t=%d", r.Time)
		}
		if seen[int32(r.Node)] {
			t.Errorf("node %d requested twice", r.Node)
		}
		seen[int32(r.Node)] = true
	}
	if err := set.Validate(20); err != nil {
		t.Error(err)
	}
}

func TestOneShotRejectsOversubscription(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > n")
		}
	}()
	OneShot(3, 5, 1)
}

func TestSequentialSpacing(t *testing.T) {
	set := Sequential(10, 6, 25, 2)
	if len(set) != 6 {
		t.Fatalf("|R| = %d, want 6", len(set))
	}
	for i := 1; i < len(set); i++ {
		if set[i].Time-set[i-1].Time != 25 {
			t.Errorf("gap %d between requests %d,%d, want 25",
				set[i].Time-set[i-1].Time, i-1, i)
		}
	}
}

func TestPoissonHorizonAndDeterminism(t *testing.T) {
	a := Poisson(12, 0.5, 100, 7)
	b := Poisson(12, 0.5, 100, 7)
	if len(a) != len(b) {
		t.Fatal("same seed, different size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different requests")
		}
	}
	for _, r := range a {
		if r.Time < 0 || r.Time >= 100 {
			t.Errorf("request outside horizon: %v", r)
		}
	}
	if err := a.Validate(12); err != nil {
		t.Error(err)
	}
}

func TestPoissonRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Poisson(5, 0, 10, 1)
}

func TestBurstyStructure(t *testing.T) {
	set := Bursty(16, 5, 3, 100, 4)
	if len(set) != 15 {
		t.Fatalf("|R| = %d, want 15", len(set))
	}
	// Every request falls inside its burst window [b*100, b*100+5).
	for _, r := range set {
		inWindow := false
		for b := 0; b < 3; b++ {
			base := int64(b) * 100
			if r.Time >= base && r.Time < base+5 {
				inWindow = true
			}
		}
		if !inWindow {
			t.Errorf("request %v outside any burst window", r)
		}
	}
}

func TestHotspotFraction(t *testing.T) {
	set := Hotspot(50, 400, 0.7, 1000, 9)
	counts := map[int32]int{}
	for _, r := range set {
		counts[int32(r.Node)]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// The hot node should receive roughly 70% (+ noise); require > 50%.
	if maxCount < 200 {
		t.Errorf("hottest node got %d of 400 requests, want > 200", maxCount)
	}
}

func TestHotspotValidatesFraction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Hotspot(5, 10, 1.5, 10, 1)
}

// TestConstructorInputValidation: every generator rejects degenerate
// parameters with a descriptive workload panic instead of an opaque
// failure deep inside the RNG (the original bug: Hotspot with
// horizon <= 0 reached rand.Int63n(0)) or a silently empty set.
func TestConstructorInputValidation(t *testing.T) {
	cases := []struct {
		name string
		call func()
	}{
		{"OneShot/n=0", func() { OneShot(0, 0, 1) }},
		{"OneShot/k<0", func() { OneShot(5, -1, 1) }},
		{"OneShot/k>n", func() { OneShot(3, 5, 1) }},
		{"Sequential/n=0", func() { Sequential(0, 4, 10, 1) }},
		{"Sequential/count<0", func() { Sequential(5, -1, 10, 1) }},
		{"Sequential/gap<0", func() { Sequential(5, 4, -1, 1) }},
		{"Poisson/n=0", func() { Poisson(0, 1, 10, 1) }},
		{"Poisson/rate=0", func() { Poisson(5, 0, 10, 1) }},
		{"Poisson/rate<0", func() { Poisson(5, -0.5, 10, 1) }},
		{"Poisson/horizon<0", func() { Poisson(5, 1, -1, 1) }},
		{"Bursty/n=0", func() { Bursty(0, 2, 2, 10, 1) }},
		{"Bursty/burstSize=0", func() { Bursty(5, 0, 2, 10, 1) }},
		{"Bursty/bursts<0", func() { Bursty(5, 2, -1, 10, 1) }},
		{"Bursty/burstGap<0", func() { Bursty(5, 2, 2, -1, 1) }},
		{"Hotspot/n=0", func() { Hotspot(0, 4, 0.5, 10, 1) }},
		{"Hotspot/count<0", func() { Hotspot(5, -1, 0.5, 10, 1) }},
		{"Hotspot/hotFrac<0", func() { Hotspot(5, 4, -0.1, 10, 1) }},
		{"Hotspot/hotFrac>1", func() { Hotspot(5, 4, 1.5, 10, 1) }},
		{"Hotspot/horizon=0", func() { Hotspot(5, 4, 0.5, 0, 1) }},
		{"Hotspot/horizon<0", func() { Hotspot(5, 4, 0.5, -3, 1) }},
		{"TwoNodePingPong/count<0", func() { TwoNodePingPong(0, 1, -1, 10) }},
		{"TwoNodePingPong/gap<0", func() { TwoNodePingPong(0, 1, 4, -1) }},
		{"TwoNodePingPong/node<0", func() { TwoNodePingPong(-1, 1, 4, 10) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("expected a validation panic")
				}
				if msg, ok := r.(string); !ok || !strings.HasPrefix(msg, "workload: ") {
					t.Fatalf("panic %v is not a descriptive workload error", r)
				}
			}()
			tc.call()
		})
	}
}

// TestConstructorBoundaryInputs: the smallest legal parameters build
// without panicking (empty sets are fine, opaque failures are not).
func TestConstructorBoundaryInputs(t *testing.T) {
	cases := []struct {
		name string
		call func() int
	}{
		{"OneShot/k=0", func() int { return len(OneShot(1, 0, 1)) }},
		{"OneShot/k=n", func() int { return len(OneShot(4, 4, 1)) }},
		{"Sequential/count=0", func() int { return len(Sequential(1, 0, 0, 1)) }},
		{"Poisson/horizon=0", func() int { return len(Poisson(1, 1, 0, 1)) }},
		{"Bursty/bursts=0", func() int { return len(Bursty(1, 1, 0, 0, 1)) }},
		{"Hotspot/count=0", func() int { return len(Hotspot(1, 0, 0, 1, 1)) }},
		{"Hotspot/horizon=1", func() int { return len(Hotspot(3, 7, 1, 1, 1)) }},
		{"TwoNodePingPong/count=0", func() int { return len(TwoNodePingPong(0, 1, 0, 0)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.call(); got < 0 {
				t.Fatalf("impossible size %d", got)
			}
		})
	}
}

func TestTwoNodePingPong(t *testing.T) {
	set := TwoNodePingPong(3, 9, 4, 10)
	if len(set) != 4 {
		t.Fatalf("|R| = %d", len(set))
	}
	if set[0].Node != 3 || set[1].Node != 9 || set[2].Node != 3 || set[3].Node != 9 {
		t.Errorf("alternation broken: %v", set)
	}
}

func TestLowerBoundInstanceShape(t *testing.T) {
	inst := LowerBound(3, 2)
	if inst.D != 8 {
		t.Errorf("D = %d, want 8", inst.D)
	}
	if inst.K != 2 {
		t.Errorf("K = %d, want 2", inst.K)
	}
	if inst.Root != 0 {
		t.Errorf("root = %d, want v0", inst.Root)
	}
	// The seed request (vD, k) must be present.
	found := false
	for _, r := range inst.Set {
		if int(r.Node) == 8 && r.Time == 2 {
			found = true
		}
		if int(r.Node) < 0 || int(r.Node) > 8 {
			t.Errorf("request outside path: %v", r)
		}
		if r.Time < 0 || r.Time > 2 {
			t.Errorf("request outside time range: %v", r)
		}
	}
	if !found {
		t.Error("seed request (v8, t=2) missing")
	}
	// Padding requests at both endpoints for t = 0..k-1.
	for tt := int64(0); tt < 2; tt++ {
		for _, node := range []int{0, 8} {
			ok := false
			for _, r := range inst.Set {
				if int(r.Node) == node && r.Time == tt {
					ok = true
				}
			}
			if !ok {
				t.Errorf("padding request (v%d, t=%d) missing", node, tt)
			}
		}
	}
	if err := inst.Set.Validate(9); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundNoDuplicates(t *testing.T) {
	prop := func(s uint8) bool {
		logD := 2 + int(s%6)
		k := DefaultK(1 << logD)
		inst := LowerBound(logD, k)
		seen := map[[2]int64]bool{}
		for _, r := range inst.Set {
			key := [2]int64{int64(r.Node), r.Time}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDefaultK(t *testing.T) {
	cases := []struct{ d, want int }{
		{2, 2}, {8, 2}, {64, 2}, {1 << 12, 2}, {1 << 20, 4},
	}
	for _, tc := range cases {
		if k := DefaultK(tc.d); k != tc.want {
			t.Errorf("DefaultK(%d) = %d, want %d", tc.d, k, tc.want)
		}
		if DefaultK(tc.d)%2 != 0 {
			t.Errorf("DefaultK(%d) must be even", tc.d)
		}
	}
}

func TestGeneratorsProduceValidSets(t *testing.T) {
	prop := func(seed int64) bool {
		n := 8 + int(seed%9+9)%9
		sets := []queuing.Set{
			OneShot(n, n/2, seed),
			Sequential(n, 10, 5, seed),
			Poisson(n, 0.3, 50, seed),
			Bursty(n, 4, 3, 20, seed),
			Hotspot(n, 15, 0.5, 40, seed),
		}
		for _, s := range sets {
			if s.Validate(n) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
