package workload

import (
	"math"
	"testing"

	"repro/internal/graph"
)

// TestZipfSampleBoundaries pins the inverse-CDF edges: u = 0 lands on
// the first object and the u→1 boundary (where u·total can round to
// exactly total) lands on the last, never out of range.
func TestZipfSampleBoundaries(t *testing.T) {
	for _, skew := range []float64{0, 0.8, 1.1, 2} {
		z := NewZipf(16, skew)
		if o := z.Sample(0); o != 0 {
			t.Errorf("skew %g: Sample(0) = %d, want 0", skew, o)
		}
		if o := z.Sample(math.Nextafter(1, 0)); o != 15 {
			t.Errorf("skew %g: Sample(1-ε) = %d, want 15", skew, o)
		}
		if z.K() != 16 {
			t.Errorf("K() = %d, want 16", z.K())
		}
	}
}

// TestZipfUniformAtZeroSkew: skew 0 degenerates to the uniform law —
// each object's share of a fine sweep of the unit interval is 1/k.
func TestZipfUniformAtZeroSkew(t *testing.T) {
	const k, samples = 8, 8000
	z := NewZipf(k, 0)
	counts := make([]int, k)
	for i := 0; i < samples; i++ {
		counts[z.Sample(float64(i)/samples)]++
	}
	// Float rounding at a bucket boundary can shift a single sweep point,
	// so allow one sample of slack per object.
	for o, c := range counts {
		if d := c - samples/k; d < -1 || d > 1 {
			t.Errorf("object %d drew %d of %d uniform samples, want %d±1", o, c, samples, samples/k)
		}
	}
}

// TestZipfSkewOrdersPopularity: under positive skew the empirical
// popularity is non-increasing in object ID, and the head object beats
// the uniform share decisively.
func TestZipfSkewOrdersPopularity(t *testing.T) {
	const k = 32
	const nodes, perNode = 16, 500
	z := NewZipf(k, 1.1)
	counts := make([]int, k)
	for v := 0; v < nodes; v++ {
		for r := 0; r < perNode; r++ {
			counts[z.Draw(3, graph.NodeID(v), int64(r))]++
		}
	}
	total := nodes * perNode
	if counts[0]*k < 2*total {
		t.Errorf("head object drew %d of %d — not even 2x the uniform share under skew 1.1", counts[0], total)
	}
	// The exact law is monotone; empirical counts in the head must be
	// too (the tail's tiny counts are allowed to tie).
	for o := 1; o < 8; o++ {
		if counts[o] > counts[o-1] {
			t.Errorf("popularity not monotone at head: counts[%d]=%d > counts[%d]=%d",
				o, counts[o], o-1, counts[o-1])
		}
	}
}

// TestZipfDrawDeterministic: Draw is a pure function of
// (seed, node, req) — the counter-based property the concurrent shard
// driver relies on for worker-count independence — and distinct seeds
// decorrelate the streams.
func TestZipfDrawDeterministic(t *testing.T) {
	z := NewZipf(64, 1.1)
	same := true
	for v := 0; v < 8; v++ {
		for r := 0; r < 32; r++ {
			a := z.Draw(11, graph.NodeID(v), int64(r))
			if b := z.Draw(11, graph.NodeID(v), int64(r)); a != b {
				t.Fatalf("Draw(11, %d, %d) unstable: %d then %d", v, r, a, b)
			}
			if a != z.Draw(12, graph.NodeID(v), int64(r)) {
				same = false
			}
		}
	}
	if same {
		t.Error("seeds 11 and 12 drew identical object streams")
	}
}

// TestZipfSingleObject: k = 1 short-circuits to object 0.
func TestZipfSingleObject(t *testing.T) {
	z := NewZipf(1, 1.1)
	for r := int64(0); r < 10; r++ {
		if o := z.Draw(5, 3, r); o != 0 {
			t.Fatalf("Draw with k=1 returned %d", o)
		}
	}
}

// TestZipfRejectsBadParameters: the constructor refuses k < 1 and
// negative skew.
func TestZipfRejectsBadParameters(t *testing.T) {
	for _, tc := range []struct {
		k    int
		skew float64
	}{{0, 1}, {-1, 1}, {4, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %g) did not panic", tc.k, tc.skew)
				}
			}()
			NewZipf(tc.k, tc.skew)
		}()
	}
}
