// Parallel-commit identity pin: the sharded deterministic commit must
// reproduce the serial drain bit for bit — counters, makespan, event
// counts AND the latency/hops histogram moments — for every ShardSafe
// stepper, at every worker count, under both link-capacity contention
// (LinkTxTime > 0) and randomized per-message latency (the counter-RNG
// model, the only random latency the sharded commit admits). This is
// the repo-level witness for the scale tier's core invariant: Workers
// is a throughput knob, never a semantics knob.
package repro

import (
	"reflect"
	"testing"

	"repro/internal/arrow"
	"repro/internal/centralized"
	"repro/internal/ivy"
	"repro/internal/loop"
	"repro/internal/nta"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tree"
)

// newShardStepper builds a fresh stepper (steppers are stateful; every
// run needs its own copy) for the named protocol.
func newShardStepper(t *testing.T, proto string, n, k int) shard.Stepper {
	t.Helper()
	var (
		st  shard.Stepper
		err error
	)
	switch proto {
	case "arrow":
		st, err = arrow.NewShardForest(n, k)
	case "centralized":
		st, err = centralized.NewShardCenters(n, k)
	case "nta":
		st, err = nta.NewShardReversal(n, k)
	case "ivy":
		st, err = ivy.NewShardDirectory(n, k)
	default:
		t.Fatalf("unknown proto %q", proto)
	}
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// shardOut is everything a multi-object run observes: the full counter
// result plus the aggregate recorder's histogram snapshots.
type shardOut struct {
	res     shard.Result
	latency stats.Dist
	hops    stats.Dist
}

func runShardOnce(t *testing.T, proto string, workers int, lat sim.LatencyModel, tx sim.Time) shardOut {
	t.Helper()
	const (
		n       = 48
		k       = 8
		perNode = 6
	)
	rec := stats.NewDistRecorder()
	res, err := shard.Run(sim.NewCompleteTopology(n), newShardStepper(t, proto, n, k), proto, shard.Spec{
		Spec: loop.Spec{
			PerNode:    perNode,
			Seed:       7,
			Latency:    lat,
			Recorder:   rec,
			Workers:    workers,
			LinkTxTime: tx,
		},
		Objects: k,
		Skew:    1.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return shardOut{res: *res, latency: rec.Latency.Snapshot(), hops: rec.Hops.Snapshot()}
}

// TestParallelCommitBitIdentical sweeps workers ∈ {1,2,4,8} across
// every ShardSafe stepper under capacity contention and counter-RNG
// latency, comparing the complete output — including exact histogram
// moments — against the serial run.
func TestParallelCommitBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		lat  sim.LatencyModel
		tx   sim.Time
	}{
		// Window width 1: the unit-MinDelay models, one tick per barrier.
		{"capacity", nil, 2},
		{"counter", sim.AsyncCounter(3), 0},
		{"counter/capacity", sim.AsyncCounter(3), 1},
		// Window width L = 8: the scaled synchronous model fuses eight
		// ticks per barrier, so every driver think timer (1 tick) fires
		// mid-window through the in-shard sub-queue.
		{"window8", sim.SynchronousScaled(8), 0},
		{"window8/capacity", sim.SynchronousScaled(8), 2},
	}
	for _, proto := range []string{"arrow", "centralized", "nta", "ivy"} {
		for _, tc := range cases {
			t.Run(proto+"/"+tc.name, func(t *testing.T) {
				base := runShardOnce(t, proto, 1, tc.lat, tc.tx)
				for _, w := range []int{2, 4, 8} {
					got := runShardOnce(t, proto, w, tc.lat, tc.tx)
					if !reflect.DeepEqual(got, base) {
						t.Errorf("workers=%d diverges from serial:\n got %+v\nwant %+v", w, got, base)
					}
				}
			})
		}
	}
}

// TestParallelCommitLoopDriver covers the single-object loop driver's
// path through the sharded commit (the scale tier's actual hot path):
// arrow on an implicit binary tree with counter-RNG latency and link
// capacity, workers 1 vs 4 vs 8.
func TestParallelCommitLoopDriver(t *testing.T) {
	run := func(workers int) (*arrow.LoopResult, stats.Dist, stats.Dist) {
		rec := stats.NewDistRecorder()
		res, err := arrow.RunClosedLoop(tree.BinaryWalker(301), arrow.LoopConfig{
			Spec: loop.Spec{
				PerNode:    5,
				Seed:       3,
				Latency:    sim.AsyncCounter(2),
				Recorder:   rec,
				Workers:    workers,
				LinkTxTime: 1,
			},
			Root: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, rec.Latency.Snapshot(), rec.Hops.Snapshot()
	}
	baseRes, baseLat, baseHops := run(1)
	for _, w := range []int{4, 8} {
		res, lat, hops := run(w)
		if !reflect.DeepEqual(res, baseRes) || lat != baseLat || hops != baseHops {
			t.Errorf("workers=%d diverges from serial:\n got %+v %+v %+v\nwant %+v %+v %+v",
				w, res, lat, hops, baseRes, baseLat, baseHops)
		}
	}
}

// TestWindowedDrainLoopDriver is TestParallelCommitLoopDriver's
// wide-window sibling: the same implicit-tree closed loop under
// SynchronousScaled(6) with link capacity, so every barrier fuses six
// ticks and the drain telemetry must show it. The telemetry is read
// through the loop.Spec out-pointer — deliberately outside the compared
// result, since barrier counts legitimately differ across worker
// counts.
func TestWindowedDrainLoopDriver(t *testing.T) {
	run := func(workers int) (*arrow.LoopResult, stats.Dist, stats.Dist, sim.DrainStats) {
		rec := stats.NewDistRecorder()
		var ds sim.DrainStats
		res, err := arrow.RunClosedLoop(tree.BinaryWalker(301), arrow.LoopConfig{
			Spec: loop.Spec{
				PerNode:    5,
				Seed:       3,
				Latency:    sim.SynchronousScaled(6),
				Recorder:   rec,
				Workers:    workers,
				LinkTxTime: 1,
				DrainStats: &ds,
			},
			Root: 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, rec.Latency.Snapshot(), rec.Hops.Snapshot(), ds
	}
	baseRes, baseLat, baseHops, baseDS := run(1)
	if baseDS.WindowWidth != 1 || baseDS.Windows != 0 {
		t.Fatalf("serial run reported parallel drain stats %+v", baseDS)
	}
	for _, w := range []int{2, 4, 8} {
		res, lat, hops, ds := run(w)
		if !reflect.DeepEqual(res, baseRes) || lat != baseLat || hops != baseHops {
			t.Errorf("workers=%d diverges from serial:\n got %+v %+v %+v\nwant %+v %+v %+v",
				w, res, lat, hops, baseRes, baseLat, baseHops)
		}
		if ds.WindowWidth != 6 {
			t.Errorf("workers=%d: window width %d, want 6", w, ds.WindowWidth)
		}
		if ds.Windows < 1 || ds.MeanBatch() <= 0 {
			t.Errorf("workers=%d: no fused parallel window ran (stats %+v)", w, ds)
		}
	}
}
