// Scale-tier memory pin: the whole point of the implicit topologies and
// the flat (SoA) driver state is that per-node memory stays constant as
// n grows — no LCA tables (O(n log n)), no distance matrices (O(n²)),
// no per-node closures. This test turns that claim into a regression
// gate on allocated bytes per node.
package repro

import (
	gort "runtime"
	"testing"

	"repro/internal/arrow"
	"repro/internal/loop"
	"repro/internal/tree"
)

// allocPerNode measures cumulative heap allocation (TotalAlloc delta)
// of one serial closed-loop arrow run on an implicit binary tree,
// divided by the node count. TotalAlloc is the honest metric: transient
// garbage counts, so a per-request allocation would scale the number
// with PerNode·n instead of n and blow the gate.
func allocPerNode(t *testing.T, n, perNode int) float64 {
	t.Helper()
	var ms gort.MemStats
	gort.GC()
	gort.ReadMemStats(&ms)
	before := ms.TotalAlloc
	res, err := arrow.RunClosedLoop(tree.BinaryWalker(n), arrow.LoopConfig{Spec: loop.Spec{PerNode: perNode}, Root: 0})
	gort.ReadMemStats(&ms)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * int64(perNode); res.Requests != want {
		t.Fatalf("n=%d: completed %d of %d requests", n, res.Requests, want)
	}
	return float64(ms.TotalAlloc-before) / float64(n)
}

// TestScaleBytesPerNodeFlat pins the fixed-memory property from 10k to
// 100k nodes: bytes/node may not grow by more than 50% across the
// decade (allocator size-class and slice-growth rounding move it a
// little), and stays under an absolute per-node budget that a single
// stray O(n log n) table would immediately break (the lifted tree alone
// costs ~8·log₂(n) ≈ 136 bytes/node in parent tables at 100k).
func TestScaleBytesPerNodeFlat(t *testing.T) {
	const perNode = 4
	small := allocPerNode(t, 10_001, perNode)
	big := allocPerNode(t, 100_001, perNode)
	t.Logf("bytes/node: n=10001 %.1f, n=100001 %.1f", small, big)
	if big > small*1.5 {
		t.Errorf("bytes/node grew from %.1f (10k) to %.1f (100k): not flat", small, big)
	}
	const budget = 1024
	if big > budget {
		t.Errorf("bytes/node at 100k = %.1f exceeds the %d-byte budget", big, budget)
	}
}
