// Scale-tier memory pin: the whole point of the implicit topologies and
// the flat (SoA) driver state is that per-node memory stays constant as
// n grows — no LCA tables (O(n log n)), no distance matrices (O(n²)),
// no per-node closures. This test turns that claim into a regression
// gate on allocated bytes per node.
package repro

import (
	gort "runtime"
	"testing"

	"repro/internal/arrow"
	"repro/internal/loop"
	"repro/internal/sim"
	"repro/internal/tree"
)

// allocPerNode measures cumulative heap allocation (TotalAlloc delta)
// of one closed-loop arrow run on an implicit binary tree, divided by
// the node count. TotalAlloc is the honest metric: transient garbage
// counts, so a per-request allocation would scale the number with
// PerNode·n instead of n and blow the gate — and under the parallel
// drain, a window that failed to recycle its op buffers, sub-queue
// heaps or staging slices would scale it with the window count.
func allocPerNode(t *testing.T, n, perNode int, spec loop.Spec) float64 {
	t.Helper()
	spec.PerNode = perNode
	var ms gort.MemStats
	gort.GC()
	gort.ReadMemStats(&ms)
	before := ms.TotalAlloc
	res, err := arrow.RunClosedLoop(tree.BinaryWalker(n), arrow.LoopConfig{Spec: spec, Root: 0})
	gort.ReadMemStats(&ms)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(n) * int64(perNode); res.Requests != want {
		t.Fatalf("n=%d: completed %d of %d requests", n, res.Requests, want)
	}
	return float64(ms.TotalAlloc-before) / float64(n)
}

// TestScaleBytesPerNodeFlat pins the fixed-memory property from 10k to
// 100k nodes: bytes/node may not grow by more than 50% across the
// decade (allocator size-class and slice-growth rounding move it a
// little), and stays under an absolute per-node budget that a single
// stray O(n log n) table would immediately break (the lifted tree alone
// costs ~8·log₂(n) ≈ 136 bytes/node in parent tables at 100k).
func TestScaleBytesPerNodeFlat(t *testing.T) {
	const perNode = 4
	small := allocPerNode(t, 10_001, perNode, loop.Spec{})
	big := allocPerNode(t, 100_001, perNode, loop.Spec{})
	t.Logf("bytes/node: n=10001 %.1f, n=100001 %.1f", small, big)
	if big > small*1.5 {
		t.Errorf("bytes/node grew from %.1f (10k) to %.1f (100k): not flat", small, big)
	}
	const budget = 1024
	if big > budget {
		t.Errorf("bytes/node at 100k = %.1f exceeds the %d-byte budget", big, budget)
	}
}

// TestScaleBytesPerNodeFlatWindowed is the same gate under the
// lookahead-windowed parallel drain: workers=4 with SynchronousScaled(8)
// fuses eight ticks per barrier, so ~a hundred windows run per cell,
// each re-using the pooled op buffers, in-shard sub-queue heaps, walker
// scratch and staging slices. A fused window under this saturated load
// buffers the ENTIRE in-flight frontier (~n events) in four places at
// once — the gathered batch, the per-worker op logs, the staged commit
// slices and the ladder re-push — plus the redundant walkers' sub-queue
// heaps, so its footprint is a small constant multiple of the serial
// run's ~440 B/node, independent of n. The flatness gate is the real
// regression catch (a per-window allocation would scale with the window
// count and blow it); the absolute budget pins the constant at ~4× the
// serial budget, which a leaked or un-pooled frontier-sized structure
// (one extra copy ≈ +700 B/node with append's growth ramp) would break.
func TestScaleBytesPerNodeFlatWindowed(t *testing.T) {
	const perNode = 4
	spec := loop.Spec{Workers: 4, Latency: sim.SynchronousScaled(8), DrainStats: &sim.DrainStats{}}
	small := allocPerNode(t, 10_001, perNode, spec)
	big := allocPerNode(t, 100_001, perNode, spec)
	if ds := spec.DrainStats; ds.WindowWidth != 8 || ds.Windows < 1 {
		t.Fatalf("windowed run did not engage the parallel drain (stats %+v)", *ds)
	}
	t.Logf("bytes/node (windowed, %d windows at 100k): n=10001 %.1f, n=100001 %.1f",
		spec.DrainStats.Windows, small, big)
	if big > small*1.5 {
		t.Errorf("bytes/node grew from %.1f (10k) to %.1f (100k): not flat", small, big)
	}
	const budget = 2048
	if big > budget {
		t.Errorf("bytes/node at 100k = %.1f exceeds the %d-byte budget", big, budget)
	}
}
